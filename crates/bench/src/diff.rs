//! Perf-trajectory comparison: diff two directories of `BENCH_*.json`
//! documents (as written by [`JsonSink`](crate::JsonSink) /
//! `bench_suite`) and flag regressions.
//!
//! A measurement is identified by `(file, metric, tags)`. Whether a change
//! is a regression depends on the metric's direction, inferred from its
//! name ([`metric_direction`]): throughput-like metrics regress when they
//! *drop*, latency-like metrics when they *rise*, both beyond a relative
//! threshold (default 10%). Metrics with no recognizable direction are
//! reported but never gate. A measurement present in the old document but
//! missing from the new one is always a regression — a silently truncated
//! trajectory must not read as "no change".
//!
//! Used by `bench_suite --diff OLD_DIR NEW_DIR [--threshold 0.1]`, which
//! exits non-zero when anything regressed — the comparison half of the CI
//! `bench-trajectory` gate.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// The default regression threshold (relative change).
pub const DEFAULT_THRESHOLD: f64 = 0.10;

// ---------------------------------------------------------------------
// Minimal JSON reader (offline build: no serde). Full enough for the
// documents `JsonSink` emits; strict about everything else.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered by key).
    Obj(BTreeMap<String, Json>),
}

struct Reader<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == b => {
                self.i += 1;
                Ok(())
            }
            other => Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.i,
                other.map(|c| c as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                let mut obj = BTreeMap::new();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(obj));
                }
                loop {
                    let key = match self.value()? {
                        Json::Str(s) => s,
                        other => return Err(format!("non-string object key: {other:?}")),
                    };
                    self.expect(b':')?;
                    obj.insert(key, self.value()?);
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(obj));
                        }
                        other => return Err(format!("bad object separator: {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut arr = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(arr));
                }
                loop {
                    arr.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(arr));
                        }
                        other => return Err(format!("bad array separator: {other:?}")),
                    }
                }
            }
            Some(b'"') => {
                self.i += 1;
                let mut out = String::new();
                loop {
                    match self.s.get(self.i) {
                        None => return Err("unterminated string".into()),
                        Some(b'"') => {
                            self.i += 1;
                            return Ok(Json::Str(out));
                        }
                        Some(b'\\') => {
                            self.i += 1;
                            match self.s.get(self.i) {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'/') => out.push('/'),
                                Some(b'n') => out.push('\n'),
                                Some(b'r') => out.push('\r'),
                                Some(b't') => out.push('\t'),
                                Some(b'u') => {
                                    let hex = self
                                        .s
                                        .get(self.i + 1..self.i + 5)
                                        .ok_or("truncated \\u escape")?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                        16,
                                    )
                                    .map_err(|e| e.to_string())?;
                                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                                    self.i += 4;
                                }
                                other => return Err(format!("bad escape: {other:?}")),
                            }
                            self.i += 1;
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8: copy the full code point.
                            let start = self.i;
                            let len = match b {
                                _ if b < 0x80 => 1,
                                _ if b >> 5 == 0b110 => 2,
                                _ if b >> 4 == 0b1110 => 3,
                                _ => 4,
                            };
                            let chunk = self
                                .s
                                .get(start..start + len)
                                .ok_or("truncated UTF-8 sequence")?;
                            out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                            self.i += len;
                        }
                    }
                }
            }
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                self.i += 1;
                while self
                    .s
                    .get(self.i)
                    .is_some_and(|&c| c.is_ascii_digit() || b".eE+-".contains(&c))
                {
                    self.i += 1;
                }
                let text =
                    std::str::from_utf8(&self.s[start..self.i]).map_err(|e| e.to_string())?;
                text.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|e| format!("bad number `{text}`: {e}"))
            }
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut r = Reader {
        s: text.as_bytes(),
        i: 0,
    };
    let v = r.value()?;
    r.ws();
    if r.i != r.s.len() {
        return Err(format!("trailing garbage at byte {}", r.i));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Bench documents
// ---------------------------------------------------------------------

/// One measurement row of a bench document.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Metric name.
    pub metric: String,
    /// Measured value (`None` when recorded as `null`).
    pub value: Option<f64>,
    /// String tags qualifying the measurement.
    pub tags: BTreeMap<String, String>,
}

impl Row {
    /// The identity of this measurement within its document.
    pub fn key(&self) -> String {
        let mut k = self.metric.clone();
        for (t, v) in &self.tags {
            k.push_str(&format!(" {t}={v}"));
        }
        k
    }
}

/// A parsed `BENCH_*.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDoc {
    /// The bench name recorded in the document.
    pub bench: String,
    /// The measurements, in recording order.
    pub rows: Vec<Row>,
}

/// Parses a bench document as written by `JsonSink`.
pub fn parse_document(text: &str) -> Result<BenchDoc, String> {
    let Json::Obj(top) = parse_json(text)? else {
        return Err("document is not an object".into());
    };
    let Some(Json::Str(bench)) = top.get("bench") else {
        return Err("missing `bench` string".into());
    };
    let Some(Json::Arr(results)) = top.get("results") else {
        return Err("missing `results` array".into());
    };
    let mut rows = Vec::with_capacity(results.len());
    for r in results {
        let Json::Obj(o) = r else {
            return Err("non-object result row".into());
        };
        let Some(Json::Str(metric)) = o.get("metric") else {
            return Err("row missing `metric`".into());
        };
        let value = match o.get("value") {
            Some(Json::Num(v)) => Some(*v),
            Some(Json::Null) | None => None,
            other => return Err(format!("bad `value`: {other:?}")),
        };
        let mut tags = BTreeMap::new();
        if let Some(Json::Obj(t)) = o.get("tags") {
            for (k, v) in t {
                let Json::Str(v) = v else {
                    return Err(format!("non-string tag `{k}`"));
                };
                tags.insert(k.clone(), v.clone());
            }
        }
        rows.push(Row {
            metric: metric.clone(),
            value,
            tags,
        });
    }
    Ok(BenchDoc {
        bench: bench.clone(),
        rows,
    })
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// Which way a metric is allowed to move.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Dropping is a regression (throughput, scaling, fractions-kept).
    HigherIsBetter,
    /// Rising is a regression (latencies, overheads).
    LowerIsBetter,
    /// Reported, never gated (counters, configuration echoes).
    Informational,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::HigherIsBetter => "higher-better",
            Direction::LowerIsBetter => "lower-better",
            Direction::Informational => "info",
        })
    }
}

/// Infers a metric's direction from its name.
///
/// A `host_` prefix marks wall-clock measured on whatever machine ran the
/// bench: tracked, never gated (CI runners and dev boxes differ by far
/// more than any sane threshold). Otherwise, latency-flavored names
/// (`p99`, `latency`, `overhead`, `turnaround`, `ns_per`, and
/// `_ms`/`_us`/`_ns` suffixes) are lower-is-better; throughput-flavored
/// names (`throughput`, `req_per`, `iterations`, `speedup`, `fraction`,
/// `scaling`) are higher-is-better; anything else is informational.
/// Latency wins when both match (e.g. `throughput_p99_ms`).
pub fn metric_direction(name: &str) -> Direction {
    let n = name.to_ascii_lowercase();
    if n.starts_with("host_") {
        return Direction::Informational;
    }
    let lower = ["p99", "p50", "latency", "overhead", "turnaround", "ns_per"]
        .iter()
        .any(|p| n.contains(p))
        || n.ends_with("_ms")
        || n.ends_with("_us")
        || n.ends_with("_ns");
    if lower {
        return Direction::LowerIsBetter;
    }
    let higher = [
        "throughput",
        "req_per",
        "iterations",
        "speedup",
        "fraction",
        "scaling",
        "norm",
    ]
    .iter()
    .any(|p| n.contains(p));
    if higher {
        return Direction::HigherIsBetter;
    }
    Direction::Informational
}

/// One compared measurement.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Source file name (e.g. `BENCH_fig5.json`).
    pub file: String,
    /// Measurement identity: metric plus rendered tags.
    pub key: String,
    /// Old value, if present and finite.
    pub old: Option<f64>,
    /// New value, if present and finite.
    pub new: Option<f64>,
    /// Gating direction.
    pub direction: Direction,
    /// Relative change `(new - old) / |old|`, when both sides exist and
    /// `old != 0`.
    pub rel: Option<f64>,
    /// Whether this measurement regressed beyond the threshold.
    pub regressed: bool,
}

/// Compares two documents row-by-row. `file` labels the deltas.
pub fn diff_docs(file: &str, old: &BenchDoc, new: &BenchDoc, threshold: f64) -> Vec<Delta> {
    let new_by_key: BTreeMap<String, &Row> = new.rows.iter().map(|r| (r.key(), r)).collect();
    let old_keys: std::collections::BTreeSet<String> = old.rows.iter().map(|r| r.key()).collect();
    let mut out = Vec::new();
    for row in &old.rows {
        let key = row.key();
        let direction = metric_direction(&row.metric);
        let newr = new_by_key.get(&key);
        let old_v = row.value;
        let new_v = newr.and_then(|r| r.value);
        let rel = match (old_v, new_v) {
            (Some(o), Some(n)) if o != 0.0 => Some((n - o) / o.abs()),
            _ => None,
        };
        let regressed = match (old_v, new_v) {
            // A measurement that disappeared always fails: silent
            // truncation must not read as "no change".
            (Some(_), None) => true,
            (None, _) => false,
            (Some(o), Some(n)) => match direction {
                Direction::Informational => false,
                Direction::HigherIsBetter => rel.is_some_and(|r| r < -threshold),
                // A perfect old value of exactly 0 (e.g. zero overhead)
                // has no relative scale: any rise off it regresses.
                Direction::LowerIsBetter => {
                    rel.is_some_and(|r| r > threshold) || (o == 0.0 && n > 0.0)
                }
            },
        };
        out.push(Delta {
            file: file.to_string(),
            key,
            old: old_v,
            new: new_v,
            direction,
            rel,
            regressed,
        });
    }
    // Brand-new measurements are fine — report them as informational.
    for row in &new.rows {
        let key = row.key();
        if !old_keys.contains(&key) {
            out.push(Delta {
                file: file.to_string(),
                key,
                old: None,
                new: row.value,
                direction: metric_direction(&row.metric),
                rel: None,
                regressed: false,
            });
        }
    }
    out
}

/// Compares every `BENCH_*.json` in `old_dir` against its counterpart in
/// `new_dir`. A document missing from `new_dir` fails (one synthetic
/// all-regressed delta); extra documents in `new_dir` are ignored (they
/// join the trajectory once committed).
pub fn diff_dirs(old_dir: &Path, new_dir: &Path, threshold: f64) -> Result<Vec<Delta>, String> {
    let mut names: Vec<String> = std::fs::read_dir(old_dir)
        .map_err(|e| format!("reading {}: {e}", old_dir.display()))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!(
            "no BENCH_*.json documents in {}",
            old_dir.display()
        ));
    }
    let mut out = Vec::new();
    for name in names {
        let old_text = std::fs::read_to_string(old_dir.join(&name))
            .map_err(|e| format!("reading {name}: {e}"))?;
        let old_doc = parse_document(&old_text).map_err(|e| format!("{name} (old): {e}"))?;
        let new_path = new_dir.join(&name);
        if !new_path.exists() {
            out.push(Delta {
                file: name.clone(),
                key: "<document>".into(),
                old: Some(old_doc.rows.len() as f64),
                new: None,
                direction: Direction::Informational,
                rel: None,
                regressed: true,
            });
            continue;
        }
        let new_text =
            std::fs::read_to_string(&new_path).map_err(|e| format!("reading {name}: {e}"))?;
        let new_doc = parse_document(&new_text).map_err(|e| format!("{name} (new): {e}"))?;
        out.extend(diff_docs(&name, &old_doc, &new_doc, threshold));
    }
    Ok(out)
}

/// Renders the delta table and verdict to stdout; returns whether any
/// measurement regressed.
pub fn print_report(deltas: &[Delta], threshold: f64) -> bool {
    println!(
        "{:<22} {:<46} {:>12} {:>12} {:>8}  verdict",
        "file", "measurement", "old", "new", "delta"
    );
    let mut regressions = 0usize;
    for d in deltas {
        let fmt_v = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.4}"));
        let rel = d
            .rel
            .map_or("-".to_string(), |r| format!("{:+.1}%", r * 100.0));
        let verdict = if d.regressed {
            regressions += 1;
            "REGRESSED"
        } else if d.rel.is_some_and(|r| {
            (d.direction == Direction::HigherIsBetter && r > threshold)
                || (d.direction == Direction::LowerIsBetter && r < -threshold)
        }) {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<22} {:<46} {:>12} {:>12} {:>8}  {}",
            d.file,
            d.key,
            fmt_v(d.old),
            fmt_v(d.new),
            rel,
            verdict
        );
    }
    println!(
        "\n{} measurement(s), {} regression(s) beyond {:.0}%",
        deltas.len(),
        regressions,
        threshold * 100.0
    );
    regressions > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonSink;

    type RowSpec<'a> = (&'a str, f64, &'a [(&'a str, &'a str)]);

    fn doc(rows: &[RowSpec<'_>]) -> BenchDoc {
        // Write through the real sink and parse back, so the format stays
        // covered end to end.
        let path = std::env::temp_dir().join(format!(
            "tally_diff_test_{}_{}.json",
            std::process::id(),
            rows.len()
        ));
        let mut sink = JsonSink::to_path("t", Some(path.clone()));
        for (m, v, tags) in rows {
            sink.record(m, *v, tags);
        }
        sink.finish();
        let text = std::fs::read_to_string(&path).expect("written");
        std::fs::remove_file(&path).ok();
        parse_document(&text).expect("parses")
    }

    #[test]
    fn parses_sink_output() {
        let d = doc(&[
            ("p99_ms", 1.5, &[("system", "tally")]),
            ("throughput", 10.0, &[]),
        ]);
        assert_eq!(d.bench, "t");
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.rows[0].metric, "p99_ms");
        assert_eq!(d.rows[0].tags["system"], "tally");
        assert_eq!(d.rows[1].value, Some(10.0));
    }

    #[test]
    fn direction_inference() {
        assert_eq!(metric_direction("p99_ms"), Direction::LowerIsBetter);
        assert_eq!(metric_direction("phase_p99_ms"), Direction::LowerIsBetter);
        assert_eq!(metric_direction("p99_overhead"), Direction::LowerIsBetter);
        assert_eq!(
            metric_direction("fleet_throughput"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            metric_direction("total_req_per_min"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            metric_direction("trainer_iterations"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            metric_direction("trainer_attachments"),
            Direction::Informational
        );
    }

    #[test]
    fn identical_documents_pass() {
        let a = doc(&[("throughput", 10.0, &[("s", "x")]), ("p99_ms", 2.0, &[])]);
        let deltas = diff_docs("f", &a, &a, DEFAULT_THRESHOLD);
        assert!(deltas.iter().all(|d| !d.regressed));
    }

    #[test]
    fn throughput_drop_regresses() {
        let old = doc(&[("throughput", 10.0, &[])]);
        let new = doc(&[("throughput", 8.0, &[])]); // -20%
        let deltas = diff_docs("f", &old, &new, DEFAULT_THRESHOLD);
        assert!(deltas.iter().any(|d| d.regressed), "{deltas:?}");
        // …but a 20% drop is fine under a 30% threshold.
        let deltas = diff_docs("f", &old, &new, 0.30);
        assert!(deltas.iter().all(|d| !d.regressed));
    }

    #[test]
    fn p99_rise_regresses_and_drop_improves() {
        let old = doc(&[("p99_ms", 2.0, &[])]);
        let worse = doc(&[("p99_ms", 2.5, &[])]); // +25%
        let better = doc(&[("p99_ms", 1.0, &[])]);
        assert!(diff_docs("f", &old, &worse, DEFAULT_THRESHOLD)
            .iter()
            .any(|d| d.regressed));
        assert!(diff_docs("f", &old, &better, DEFAULT_THRESHOLD)
            .iter()
            .all(|d| !d.regressed));
    }

    #[test]
    fn missing_measurement_regresses_but_new_ones_pass() {
        let old = doc(&[("throughput", 10.0, &[("s", "a")])]);
        let new = doc(&[("throughput", 10.0, &[("s", "b")])]);
        let deltas = diff_docs("f", &old, &new, DEFAULT_THRESHOLD);
        let dropped = deltas.iter().find(|d| d.key.contains("s=a")).unwrap();
        assert!(dropped.regressed, "dropped measurement must fail");
        let added = deltas.iter().find(|d| d.key.contains("s=b")).unwrap();
        assert!(!added.regressed, "new measurement must not fail");
    }

    #[test]
    fn sim_timings_gate_but_host_timings_do_not() {
        // Simulated-time metrics gate as lower-is-better…
        assert_eq!(metric_direction("ns_per_iter"), Direction::LowerIsBetter);
        let old = doc(&[("ns_per_iter", 1000.0, &[])]);
        let new = doc(&[("ns_per_iter", 1200.0, &[])]); // +20%
        assert!(diff_docs("f", &old, &new, DEFAULT_THRESHOLD)
            .iter()
            .any(|d| d.regressed));
        // …but host wall-clock is machine-dependent noise: never gated.
        assert_eq!(
            metric_direction("host_ns_per_iter"),
            Direction::Informational
        );
        let old = doc(&[("host_ns_per_iter", 1000.0, &[])]);
        let new = doc(&[("host_ns_per_iter", 5000.0, &[])]);
        assert!(diff_docs("f", &old, &new, DEFAULT_THRESHOLD)
            .iter()
            .all(|d| !d.regressed));
    }

    #[test]
    fn rise_off_a_zero_baseline_regresses_lower_is_better() {
        let old = doc(&[("virtualization_overhead", 0.0, &[])]);
        let worse = doc(&[("virtualization_overhead", 0.05, &[])]);
        assert!(diff_docs("f", &old, &worse, DEFAULT_THRESHOLD)
            .iter()
            .any(|d| d.regressed));
        // Staying at zero is fine.
        assert!(diff_docs("f", &old, &old, DEFAULT_THRESHOLD)
            .iter()
            .all(|d| !d.regressed));
    }

    #[test]
    fn informational_metrics_never_gate() {
        let old = doc(&[("trainer_attachments", 10.0, &[])]);
        let new = doc(&[("trainer_attachments", 1.0, &[])]);
        assert!(diff_docs("f", &old, &new, DEFAULT_THRESHOLD)
            .iter()
            .all(|d| !d.regressed));
    }

    #[test]
    fn json_reader_handles_escapes_and_nulls() {
        let v = parse_json(r#"{"a": "x\n\"y\"", "b": null, "c": [1, -2.5e1]}"#).unwrap();
        let Json::Obj(o) = v else { panic!() };
        assert_eq!(o["a"], Json::Str("x\n\"y\"".into()));
        assert_eq!(o["b"], Json::Null);
        assert_eq!(o["c"], Json::Arr(vec![Json::Num(1.0), Json::Num(-25.0)]));
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} garbage").is_err());
    }
}
