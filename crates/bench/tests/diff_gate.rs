//! End-to-end test of the perf-trajectory gate: the real `bench_suite`
//! binary must exit zero when two trajectory directories are identical and
//! non-zero on a synthetic 20% throughput regression (the CI contract).

use std::path::{Path, PathBuf};
use std::process::Command;

use tally_bench::JsonSink;

fn write_doc(dir: &Path, file: &str, bench: &str, rows: &[(&str, f64)]) {
    let mut sink = JsonSink::to_path(bench, Some(dir.join(file)));
    for (metric, value) in rows {
        sink.record(metric, *value, &[("system", "tally")]);
    }
    sink.finish();
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tally_diff_gate_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn run_diff(old: &Path, new: &Path) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_bench_suite"))
        .args(["--diff"])
        .arg(old)
        .arg(new)
        .status()
        .expect("bench_suite runs")
}

#[test]
fn exits_zero_on_identical_documents() {
    let old = temp_dir("ident_old");
    let new = temp_dir("ident_new");
    for d in [&old, &new] {
        write_doc(
            d,
            "BENCH_x.json",
            "x",
            &[("fleet_throughput", 100.0), ("p99_ms", 2.5)],
        );
    }
    let status = run_diff(&old, &new);
    assert!(
        status.success(),
        "identical trajectories must pass: {status}"
    );
}

#[test]
fn exits_nonzero_on_twenty_percent_throughput_drop() {
    let old = temp_dir("drop_old");
    let new = temp_dir("drop_new");
    write_doc(&old, "BENCH_x.json", "x", &[("fleet_throughput", 100.0)]);
    write_doc(&new, "BENCH_x.json", "x", &[("fleet_throughput", 80.0)]);
    let status = run_diff(&old, &new);
    assert!(
        !status.success(),
        "a 20% throughput drop must fail the 10% gate"
    );
}

#[test]
fn exits_nonzero_on_p99_rise_and_zero_within_threshold() {
    let old = temp_dir("p99_old");
    let new = temp_dir("p99_new");
    write_doc(&old, "BENCH_x.json", "x", &[("p99_ms", 2.0)]);
    write_doc(&new, "BENCH_x.json", "x", &[("p99_ms", 2.6)]); // +30%
    assert!(!run_diff(&old, &new).success(), "p99 rise must fail");
    // Within the default 10% threshold: passes.
    write_doc(&new, "BENCH_x.json", "x", &[("p99_ms", 2.1)]); // +5%
    assert!(
        run_diff(&old, &new).success(),
        "+5% p99 is within threshold"
    );
}

#[test]
fn exits_nonzero_when_a_document_disappears() {
    let old = temp_dir("gone_old");
    let new = temp_dir("gone_new");
    write_doc(&old, "BENCH_x.json", "x", &[("p99_ms", 2.0)]);
    write_doc(&old, "BENCH_y.json", "y", &[("p99_ms", 2.0)]);
    write_doc(&new, "BENCH_x.json", "x", &[("p99_ms", 2.0)]);
    assert!(
        !run_diff(&old, &new).success(),
        "a vanished trajectory document must fail"
    );
}
