//! Smoke tests: every system the bench binaries construct by name can run
//! a short co-location without panicking, so `cargo test` exercises the
//! same code paths as the (long-running) bench targets.

use tally_bench::{make_system, run_session, FIG5_SYSTEMS};
use tally_core::harness::HarnessConfig;
use tally_gpu::{GpuSpec, SimSpan, SimTime};
use tally_workloads::maf2::{arrivals, Maf2Config};
use tally_workloads::{InferModel, TrainModel};

/// The two Figure 7b ablation names `make_system` also accepts.
const ABLATIONS: [&str; 2] = ["no-scheduling", "sched-no-transform"];

fn short_cfg() -> HarnessConfig {
    HarnessConfig {
        duration: SimSpan::from_millis(50),
        warmup: SimSpan::ZERO,
        seed: 3,
        jitter: 0.0,
        record_timelines: false,
    }
}

#[test]
fn every_fig5_system_survives_a_short_colocation() {
    let spec = GpuSpec::a100();
    let cfg = short_cfg();
    for name in FIG5_SYSTEMS.iter().chain(ABLATIONS.iter()) {
        let trace = arrivals(&Maf2Config::new(
            0.5,
            InferModel::Bert.paper_latency(),
            cfg.duration,
        ));
        let jobs = [
            InferModel::Bert.job(&spec, trace),
            TrainModel::PointNet.job(&spec),
        ];
        assert_eq!(
            make_system(name).name(),
            *name,
            "constructed system reports its name"
        );
        let report = run_session(&spec, jobs, name, &cfg);
        assert_eq!(report.system, *name);
        assert!(
            report.high_priority().is_some(),
            "{name}: high-priority client missing from report"
        );
        assert!(
            report.best_effort().next().is_some(),
            "{name}: best-effort client missing from report"
        );
    }
}

#[test]
fn churn_smoke_under_every_system() {
    // A client that attaches and detaches inside a 50ms run must not
    // panic, wedge, or stall any system the benches construct.
    let spec = GpuSpec::a100();
    let cfg = short_cfg();
    for name in FIG5_SYSTEMS.iter().chain(ABLATIONS.iter()) {
        let trace = arrivals(&Maf2Config::new(
            0.5,
            InferModel::Bert.paper_latency(),
            cfg.duration,
        ));
        let jobs = [
            InferModel::Bert.job(&spec, trace),
            TrainModel::PointNet
                .job(&spec)
                .active_window(SimTime::from_millis(10), SimTime::from_millis(30)),
        ];
        let report = run_session(&spec, jobs, name, &cfg);
        assert!(
            report.high_priority().expect("hp").requests > 0,
            "{name}: service made no progress through the churn"
        );
    }
}

#[test]
fn reattach_smoke_under_every_system() {
    // A trainer with a two-window schedule (detach at 20ms, re-attach at
    // 35ms) must re-enter cleanly everywhere the benches go.
    let spec = GpuSpec::a100();
    let cfg = short_cfg();
    for name in FIG5_SYSTEMS.iter().chain(ABLATIONS.iter()) {
        let trace = arrivals(&Maf2Config::new(
            0.5,
            InferModel::Bert.paper_latency(),
            cfg.duration,
        ));
        let jobs = [
            InferModel::Bert.job(&spec, trace),
            TrainModel::PointNet
                .job(&spec)
                .active_window(SimTime::ZERO, SimTime::from_millis(20))
                .also_active(SimTime::from_millis(35), None),
        ];
        let report = run_session(&spec, jobs, name, &cfg);
        assert_eq!(
            report.clients[1].attachments, 2,
            "{name}: trainer must attach twice"
        );
        assert!(
            report.high_priority().expect("hp").requests > 0,
            "{name}: service made no progress through the re-attach"
        );
    }
}

#[test]
#[should_panic(expected = "unknown system")]
fn unknown_system_name_panics() {
    make_system("does-not-exist");
}
