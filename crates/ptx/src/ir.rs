//! The mini-PTX intermediate representation.
//!
//! A deliberately small subset of PTX that is still rich enough to express
//! real GPU kernels with barriers, shared memory, atomics, predication, and
//! indirect branches — everything Tally's transformation passes (paper
//! Figure 3) need to operate on.
//!
//! Differences from real PTX, chosen for clarity:
//!
//! * registers are untyped 64-bit integers (`r0`, `r1`, …) plus one-bit
//!   predicate registers (`p0`, `p1`, …);
//! * memory is addressed in 8-byte *words*, not bytes;
//! * kernel parameters are read directly as operands (`$name`) instead of
//!   through `ld.param`.

use std::fmt;

/// A virtual general-purpose register (64-bit).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u16);

/// A virtual predicate (1-bit) register.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pred(pub u16);

/// A branch label, indexing into [`Kernel::label_names`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Label(pub u32);

/// Built-in special registers exposing the thread's position in the launch
/// hierarchy (cf. CUDA `threadIdx` / `blockIdx` / `blockDim` / `gridDim`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sreg {
    /// `%tid.{x,y,z}` — thread index within the block.
    Tid(Axis),
    /// `%ntid.{x,y,z}` — block dimensions.
    Ntid(Axis),
    /// `%ctaid.{x,y,z}` — block index within the grid.
    Ctaid(Axis),
    /// `%nctaid.{x,y,z}` — grid dimensions.
    Nctaid(Axis),
}

/// One of the three launch-geometry axes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    /// The x axis.
    X,
    /// The y axis.
    Y,
    /// The z axis.
    Z,
}

impl Axis {
    /// All three axes, in order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    fn suffix(self) -> &'static str {
        match self {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }
}

/// A source operand.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// An immediate (stored as the u64 bit pattern).
    Imm(u64),
    /// A special register.
    Sreg(Sreg),
    /// A kernel parameter, by index into [`Kernel::params`].
    Param(u16),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

impl From<Sreg> for Operand {
    fn from(s: Sreg) -> Self {
        Operand::Sreg(s)
    }
}

/// Two-operand integer ALU operations (wrapping, unsigned semantics except
/// where noted).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 64 bits).
    Mul,
    /// Unsigned division; division by zero yields all-ones (hardware-like).
    Div,
    /// Unsigned remainder; by zero yields the dividend.
    Rem,
    /// Minimum (unsigned).
    Min,
    /// Maximum (unsigned).
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Logical shift right (modulo 64).
    Shr,
}

/// Comparison operators for `setp` (unsigned semantics).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

/// Memory spaces.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Space {
    /// Device-global memory, shared by all blocks and persistent across
    /// launches.
    Global,
    /// Per-block shared memory.
    Shared,
}

/// An operation (the instruction without its guard).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// A branch-target marker; executes as a no-op.
    Label(Label),
    /// `d = a`.
    Mov {
        /// Destination register.
        d: Reg,
        /// Source operand.
        a: Operand,
    },
    /// `d = a <op> b`.
    Bin {
        /// The ALU operation.
        op: BinOp,
        /// Destination register.
        d: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Fused multiply-add: `d = a * b + c` (low 64 bits).
    Mad {
        /// Destination register.
        d: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// `d = (a <cmp> b)`.
    SetP {
        /// The comparison.
        op: CmpOp,
        /// Destination predicate.
        d: Pred,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `d = !a` on predicates.
    NotP {
        /// Destination predicate.
        d: Pred,
        /// Source predicate.
        a: Pred,
    },
    /// `d = mem[addr + off]`.
    Ld {
        /// Memory space.
        space: Space,
        /// Destination register.
        d: Reg,
        /// Base address (word index).
        addr: Operand,
        /// Word offset (wrapping add; negative constants are two's
        /// complement immediates).
        off: Operand,
    },
    /// `mem[addr + off] = a`.
    St {
        /// Memory space.
        space: Space,
        /// Base address (word index).
        addr: Operand,
        /// Word offset.
        off: Operand,
        /// Value to store.
        a: Operand,
    },
    /// Atomic fetch-and-add: `d = mem[addr + off]; mem[addr + off] += a`.
    AtomAdd {
        /// Memory space.
        space: Space,
        /// Destination register (receives the old value).
        d: Reg,
        /// Base address (word index).
        addr: Operand,
        /// Word offset.
        off: Operand,
        /// Addend.
        a: Operand,
    },
    /// `bar.sync` — block-wide barrier.
    Bar,
    /// `bar.or.pred d, a` — block-wide barrier that also OR-reduces `a`
    /// across the block's threads into every thread's `d`.
    BarOrPred {
        /// Destination predicate (same value in every thread).
        d: Pred,
        /// Per-thread source predicate.
        a: Pred,
    },
    /// Unconditional (modulo guard) branch.
    Bra {
        /// Branch target.
        t: Label,
    },
    /// Indirect branch through a target table (`brx.idx` over a
    /// `.branchtargets` table): jumps to `table[idx]`.
    Brx {
        /// The branch-target table.
        table: Vec<Label>,
        /// Index operand; must evaluate to `< table.len()`.
        idx: Operand,
    },
    /// Thread exit.
    Ret,
}

/// One instruction: an optional guard predicate plus an operation.
///
/// A guard `(p, true)` executes the operation only when `p` is set
/// (`@p op` in PTX); `(p, false)` only when clear (`@!p op`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Instr {
    /// Optional guard predicate and required polarity.
    pub guard: Option<(Pred, bool)>,
    /// The operation.
    pub op: Op,
}

impl Instr {
    /// An unguarded instruction.
    pub fn new(op: Op) -> Self {
        Instr { guard: None, op }
    }

    /// An instruction guarded on `p` having value `polarity`.
    pub fn guarded(p: Pred, polarity: bool, op: Op) -> Self {
        Instr {
            guard: Some((p, polarity)),
            op,
        }
    }
}

impl From<Op> for Instr {
    fn from(op: Op) -> Self {
        Instr::new(op)
    }
}

/// A kernel function: parameters, register counts, and a body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Parameter names; launch arguments are positional.
    pub params: Vec<String>,
    /// Number of general-purpose registers used (registers are `0..num_regs`).
    pub num_regs: u16,
    /// Number of predicate registers used.
    pub num_preds: u16,
    /// Shared-memory words each block uses.
    pub shared_words: u32,
    /// The instruction sequence.
    pub body: Vec<Instr>,
    /// Names of labels, indexed by [`Label`].
    pub label_names: Vec<String>,
}

/// Errors found by [`Kernel::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidateError {
    /// A branch or table referenced a label with no `Label` marker in the body.
    UndefinedLabel(Label),
    /// The same label is defined at two positions.
    DuplicateLabel(Label),
    /// A register index is out of the declared range.
    RegOutOfRange(Reg),
    /// A predicate index is out of the declared range.
    PredOutOfRange(Pred),
    /// A parameter index is out of range.
    ParamOutOfRange(u16),
    /// A `brx` instruction has an empty target table.
    EmptyBrxTable,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UndefinedLabel(l) => write!(f, "undefined label L{}", l.0),
            ValidateError::DuplicateLabel(l) => write!(f, "duplicate label L{}", l.0),
            ValidateError::RegOutOfRange(r) => write!(f, "register r{} out of range", r.0),
            ValidateError::PredOutOfRange(p) => write!(f, "predicate p{} out of range", p.0),
            ValidateError::ParamOutOfRange(i) => write!(f, "parameter ${i} out of range"),
            ValidateError::EmptyBrxTable => write!(f, "brx with an empty target table"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl Kernel {
    /// An empty kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            params: Vec::new(),
            num_regs: 0,
            num_preds: 0,
            shared_words: 0,
            body: Vec::new(),
            label_names: Vec::new(),
        }
    }

    /// Appends a parameter and returns its operand.
    pub fn add_param(&mut self, name: impl Into<String>) -> Operand {
        self.params.push(name.into());
        Operand::Param((self.params.len() - 1) as u16)
    }

    /// Index of the parameter named `name`, if present.
    pub fn param_index(&self, name: &str) -> Option<u16> {
        self.params.iter().position(|p| p == name).map(|i| i as u16)
    }

    /// Allocates a fresh general-purpose register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Allocates a fresh predicate register.
    pub fn fresh_pred(&mut self) -> Pred {
        let p = Pred(self.num_preds);
        self.num_preds += 1;
        p
    }

    /// Allocates a fresh label with the given display name.
    pub fn fresh_label(&mut self, name: impl Into<String>) -> Label {
        let l = Label(self.label_names.len() as u32);
        self.label_names.push(name.into());
        l
    }

    /// Pushes an unguarded instruction.
    pub fn push(&mut self, op: Op) {
        self.body.push(Instr::new(op));
    }

    /// Pushes a guarded instruction.
    pub fn push_guarded(&mut self, p: Pred, polarity: bool, op: Op) {
        self.body.push(Instr::guarded(p, polarity, op));
    }

    /// Builds the label → instruction-index map.
    ///
    /// # Errors
    ///
    /// Returns an error if a label is defined twice or referenced but never
    /// defined.
    pub fn resolve_labels(&self) -> Result<Vec<usize>, ValidateError> {
        let mut map = vec![usize::MAX; self.label_names.len()];
        for (pc, instr) in self.body.iter().enumerate() {
            if let Op::Label(l) = instr.op {
                if map[l.0 as usize] != usize::MAX {
                    return Err(ValidateError::DuplicateLabel(l));
                }
                map[l.0 as usize] = pc;
            }
        }
        for instr in &self.body {
            let check = |l: &Label| -> Result<(), ValidateError> {
                if map.get(l.0 as usize).copied().unwrap_or(usize::MAX) == usize::MAX {
                    Err(ValidateError::UndefinedLabel(*l))
                } else {
                    Ok(())
                }
            };
            match &instr.op {
                Op::Bra { t } => check(t)?,
                Op::Brx { table, .. } => {
                    for t in table {
                        check(t)?;
                    }
                }
                _ => {}
            }
        }
        Ok(map)
    }

    /// Structural validation: register/parameter ranges and label integrity.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        self.resolve_labels()?;
        let check_reg = |r: Reg| {
            if r.0 < self.num_regs {
                Ok(())
            } else {
                Err(ValidateError::RegOutOfRange(r))
            }
        };
        let check_pred = |p: Pred| {
            if p.0 < self.num_preds {
                Ok(())
            } else {
                Err(ValidateError::PredOutOfRange(p))
            }
        };
        let check_opnd = |o: &Operand| match *o {
            Operand::Reg(r) => check_reg(r),
            Operand::Param(i) => {
                if (i as usize) < self.params.len() {
                    Ok(())
                } else {
                    Err(ValidateError::ParamOutOfRange(i))
                }
            }
            _ => Ok(()),
        };
        for instr in &self.body {
            if let Some((p, _)) = instr.guard {
                check_pred(p)?;
            }
            match &instr.op {
                Op::Label(_) | Op::Bar | Op::Ret | Op::Bra { .. } => {}
                Op::Mov { d, a } => {
                    check_reg(*d)?;
                    check_opnd(a)?;
                }
                Op::Bin { d, a, b, .. } => {
                    check_reg(*d)?;
                    check_opnd(a)?;
                    check_opnd(b)?;
                }
                Op::Mad { d, a, b, c } => {
                    check_reg(*d)?;
                    check_opnd(a)?;
                    check_opnd(b)?;
                    check_opnd(c)?;
                }
                Op::SetP { d, a, b, .. } => {
                    check_pred(*d)?;
                    check_opnd(a)?;
                    check_opnd(b)?;
                }
                Op::NotP { d, a } => {
                    check_pred(*d)?;
                    check_pred(*a)?;
                }
                Op::Ld { d, addr, off, .. } => {
                    check_reg(*d)?;
                    check_opnd(addr)?;
                    check_opnd(off)?;
                }
                Op::St { addr, off, a, .. } => {
                    check_opnd(addr)?;
                    check_opnd(off)?;
                    check_opnd(a)?;
                }
                Op::AtomAdd {
                    d, addr, off, a, ..
                } => {
                    check_reg(*d)?;
                    check_opnd(addr)?;
                    check_opnd(off)?;
                    check_opnd(a)?;
                }
                Op::BarOrPred { d, a } => {
                    check_pred(*d)?;
                    check_pred(*a)?;
                }
                Op::Brx { table, idx } => {
                    if table.is_empty() {
                        return Err(ValidateError::EmptyBrxTable);
                    }
                    check_opnd(idx)?;
                }
            }
        }
        Ok(())
    }

    /// Iterates over every operand read by the body, mutably — the hook the
    /// transformation passes use to rewrite `%ctaid` / `%nctaid` reads.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        for instr in &mut self.body {
            match &mut instr.op {
                Op::Label(_)
                | Op::Bar
                | Op::Ret
                | Op::Bra { .. }
                | Op::NotP { .. }
                | Op::BarOrPred { .. } => {}
                Op::Mov { a, .. } => f(a),
                Op::Bin { a, b, .. } => {
                    f(a);
                    f(b);
                }
                Op::Mad { a, b, c, .. } => {
                    f(a);
                    f(b);
                    f(c);
                }
                Op::SetP { a, b, .. } => {
                    f(a);
                    f(b);
                }
                Op::Ld { addr, off, .. } => {
                    f(addr);
                    f(off);
                }
                Op::St { addr, off, a, .. } => {
                    f(addr);
                    f(off);
                    f(a);
                }
                Op::AtomAdd { addr, off, a, .. } => {
                    f(addr);
                    f(off);
                    f(a);
                }
                Op::Brx { idx, .. } => f(idx),
            }
        }
    }
}

impl fmt::Display for Sreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sreg::Tid(a) => write!(f, "%tid.{}", a.suffix()),
            Sreg::Ntid(a) => write!(f, "%ntid.{}", a.suffix()),
            Sreg::Ctaid(a) => write!(f, "%ctaid.{}", a.suffix()),
            Sreg::Nctaid(a) => write!(f, "%nctaid.{}", a.suffix()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocators_track_counts() {
        let mut k = Kernel::new("k");
        let r0 = k.fresh_reg();
        let r1 = k.fresh_reg();
        let p0 = k.fresh_pred();
        assert_eq!((r0, r1, p0), (Reg(0), Reg(1), Pred(0)));
        assert_eq!((k.num_regs, k.num_preds), (2, 1));
    }

    #[test]
    fn validate_catches_bad_register() {
        let mut k = Kernel::new("k");
        k.push(Op::Mov {
            d: Reg(3),
            a: Operand::Imm(0),
        });
        assert_eq!(k.validate(), Err(ValidateError::RegOutOfRange(Reg(3))));
    }

    #[test]
    fn validate_catches_undefined_label() {
        let mut k = Kernel::new("k");
        let l = k.fresh_label("nowhere");
        k.push(Op::Bra { t: l });
        assert_eq!(k.validate(), Err(ValidateError::UndefinedLabel(l)));
    }

    #[test]
    fn validate_catches_duplicate_label() {
        let mut k = Kernel::new("k");
        let l = k.fresh_label("twice");
        k.push(Op::Label(l));
        k.push(Op::Label(l));
        assert_eq!(k.validate(), Err(ValidateError::DuplicateLabel(l)));
    }

    #[test]
    fn resolve_labels_maps_positions() {
        let mut k = Kernel::new("k");
        let a = k.fresh_label("a");
        let b = k.fresh_label("b");
        k.push(Op::Ret);
        k.push(Op::Label(a));
        k.push(Op::Label(b));
        let map = k.resolve_labels().expect("valid labels");
        assert_eq!(map[a.0 as usize], 1);
        assert_eq!(map[b.0 as usize], 2);
    }

    #[test]
    fn operand_rewriting_visits_reads() {
        let mut k = Kernel::new("k");
        let r = k.fresh_reg();
        k.push(Op::Mov {
            d: r,
            a: Operand::Sreg(Sreg::Ctaid(Axis::X)),
        });
        k.for_each_operand_mut(|o| {
            if matches!(o, Operand::Sreg(Sreg::Ctaid(Axis::X))) {
                *o = Operand::Imm(7);
            }
        });
        assert_eq!(
            k.body[0].op,
            Op::Mov {
                d: r,
                a: Operand::Imm(7)
            }
        );
    }
}
