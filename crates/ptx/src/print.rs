//! Pretty-printer for the mini-PTX IR; the output round-trips through
//! [`parse_kernel`](crate::parse_kernel).

use std::fmt;

use crate::ir::{BinOp, CmpOp, Instr, Kernel, Label, Op, Operand, Space};

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".entry {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, ".param {p}")?;
        }
        f.write_str(") {\n")?;
        if self.shared_words > 0 {
            writeln!(f, "    .shared {};", self.shared_words)?;
        }
        for instr in &self.body {
            write_instr(f, self, instr)?;
        }
        f.write_str("}\n")
    }
}

fn label_name(k: &Kernel, l: Label) -> &str {
    &k.label_names[l.0 as usize]
}

fn write_instr(f: &mut fmt::Formatter<'_>, k: &Kernel, instr: &Instr) -> fmt::Result {
    if let Op::Label(l) = instr.op {
        return writeln!(f, "{}:", label_name(k, l));
    }
    f.write_str("    ")?;
    if let Some((p, polarity)) = instr.guard {
        write!(f, "@{}p{} ", if polarity { "" } else { "!" }, p.0)?;
    }
    match &instr.op {
        Op::Label(_) => unreachable!("handled above"),
        Op::Mov { d, a } => write!(f, "mov r{}, {}", d.0, Dis(a, k))?,
        Op::Bin { op, d, a, b } => write!(
            f,
            "{} r{}, {}, {}",
            bin_name(*op),
            d.0,
            Dis(a, k),
            Dis(b, k)
        )?,
        Op::Mad { d, a, b, c } => write!(
            f,
            "mad r{}, {}, {}, {}",
            d.0,
            Dis(a, k),
            Dis(b, k),
            Dis(c, k)
        )?,
        Op::SetP { op, d, a, b } => write!(
            f,
            "setp.{} p{}, {}, {}",
            cmp_name(*op),
            d.0,
            Dis(a, k),
            Dis(b, k)
        )?,
        Op::NotP { d, a } => write!(f, "notp p{}, p{}", d.0, a.0)?,
        Op::Ld {
            space,
            d,
            addr,
            off,
        } => write!(
            f,
            "ld.{} r{}, {}",
            space_name(*space),
            d.0,
            Addr(addr, off, k)
        )?,
        Op::St {
            space,
            addr,
            off,
            a,
        } => write!(
            f,
            "st.{} {}, {}",
            space_name(*space),
            Addr(addr, off, k),
            Dis(a, k)
        )?,
        Op::AtomAdd {
            space,
            d,
            addr,
            off,
            a,
        } => write!(
            f,
            "atom.add.{} r{}, {}, {}",
            space_name(*space),
            d.0,
            Addr(addr, off, k),
            Dis(a, k)
        )?,
        Op::Bar => f.write_str("bar.sync")?,
        Op::BarOrPred { d, a } => write!(f, "bar.or.pred p{}, p{}", d.0, a.0)?,
        Op::Bra { t } => write!(f, "bra {}", label_name(k, *t))?,
        Op::Brx { table, idx } => {
            write!(f, "brx {}, [", Dis(idx, k))?;
            for (i, t) in table.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                f.write_str(label_name(k, *t))?;
            }
            f.write_str("]")?;
        }
        Op::Ret => f.write_str("ret")?,
    }
    f.write_str(";\n")
}

struct Dis<'a>(&'a Operand, &'a Kernel);

impl fmt::Display for Dis<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Operand::Reg(r) => write!(f, "r{}", r.0),
            Operand::Imm(v) => {
                // Print small negatives as signed for readability.
                let s = *v as i64;
                if (-4096..0).contains(&s) {
                    write!(f, "{s}")
                } else {
                    write!(f, "{v}")
                }
            }
            Operand::Sreg(s) => write!(f, "{s}"),
            Operand::Param(i) => write!(f, "${}", self.1.params[*i as usize]),
        }
    }
}

struct Addr<'a>(&'a Operand, &'a Operand, &'a Kernel);

impl fmt::Display for Addr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.1 {
            Operand::Imm(0) => write!(f, "[{}]", Dis(self.0, self.2)),
            Operand::Imm(v) if (*v as i64) < 0 => {
                write!(f, "[{} - {}]", Dis(self.0, self.2), -(*v as i64))
            }
            off => write!(f, "[{} + {}]", Dis(self.0, self.2), Dis(off, self.2)),
        }
    }
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn space_name(s: Space) -> &'static str {
    match s {
        Space::Global => "global",
        Space::Shared => "shared",
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_kernel;

    #[test]
    fn printed_kernel_reparses_with_same_shape() {
        let src = r#"
            .entry demo(.param xs, .param n) {
                .shared 3;
                mov r0, %ctaid.x;
                mad r1, r0, %ntid.x, %tid.x;
                setp.ge p0, r1, $n;
                @p0 ret;
                ld.global r2, [$xs + r1];
                add r2, r2, 1;
                st.shared [r1], r2;
                bar.sync;
                st.global [$xs + r1], r2;
                ret;
            }
        "#;
        let k = parse_kernel(src).expect("parses");
        let printed = k.to_string();
        let k2 =
            parse_kernel(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(k.body, k2.body);
        assert_eq!(k.shared_words, k2.shared_words);
        assert_eq!(k.num_regs, k2.num_regs);
    }
}
