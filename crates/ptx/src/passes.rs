//! Tally's kernel transformation passes (paper §4.1, Figure 3).
//!
//! Three passes, each preserving the original kernel's functional semantics:
//!
//! 1. **Slicing** ([`slicing`]): makes the kernel launchable as sub-kernels
//!    covering a contiguous range of the original grid. A linear
//!    block-offset parameter is added and every `%ctaid` / `%nctaid` read is
//!    rewritten to the *virtual* block index reconstructed from
//!    `offset + blockIdx` against the original grid dimensions.
//! 2. **Unified synchronization** ([`unified_sync`]): reroutes every
//!    `bar.sync` and `ret` through a single synchronization block so that
//!    all threads of a block return together. This is the prepositional
//!    pass that makes the preemption transformation safe for kernels with
//!    arbitrary barrier placement — without it, early-returning threads
//!    would diverge from syncing threads and hang the block.
//! 3. **Persistent thread blocks** ([`ptb`]): wraps the (unified-sync'd)
//!    body in a worker loop driven by a global task counter, with a
//!    preemption flag checked once per task. Progress lives entirely in the
//!    counter word, so a preempted kernel resumes by simply relaunching
//!    with the same counter buffer.
//!
//! Every pass is checked by executing original and transformed kernels in
//! the [interpreter](crate::interp) and comparing memory bit-for-bit — see
//! the tests in this module and the property tests in `tests/`.

use crate::interp::Launch;
use crate::ir::{Axis, BinOp, CmpOp, Instr, Kernel, Op, Operand, Pred, Reg, Space, Sreg};

/// Result of the slicing transformation.
#[derive(Clone, Debug)]
pub struct Sliced {
    /// The transformed kernel; launch it in 1-D slices via
    /// [`Sliced::launch`].
    pub kernel: Kernel,
    n_orig_params: usize,
}

/// Result of the persistent-thread-block transformation.
#[derive(Clone, Debug)]
pub struct Ptb {
    /// The transformed kernel; launch workers via [`Ptb::launch`].
    pub kernel: Kernel,
    n_orig_params: usize,
}

/// Sets a predicate to a constant (PTX `setp` against immediates).
fn set_pred_const(p: Pred, value: bool) -> Op {
    Op::SetP {
        op: CmpOp::Eq,
        d: p,
        a: Operand::Imm(if value { 0 } else { 1 }),
        b: Operand::Imm(0),
    }
}

/// Ensures the body ends with an explicit `ret` (falling off the end of a
/// kernel is an implicit return).
fn normalize_tail(k: &mut Kernel) {
    match k.body.last() {
        Some(Instr {
            guard: None,
            op: Op::Ret | Op::Bra { .. } | Op::Brx { .. },
        }) => {}
        _ => k.push(Op::Ret),
    }
}

/// Rewrites every `%ctaid.{x,y,z}` read to the given registers and every
/// `%nctaid.{x,y,z}` read to the given operands (the original grid dims).
fn rewrite_block_identity(k: &mut Kernel, vctaid: [Reg; 3], grid_dims: [Operand; 3]) {
    k.for_each_operand_mut(|o| {
        if let Operand::Sreg(s) = *o {
            match s {
                Sreg::Ctaid(a) => *o = Operand::Reg(vctaid[axis_idx(a)]),
                Sreg::Nctaid(a) => *o = grid_dims[axis_idx(a)],
                _ => {}
            }
        }
    });
}

fn axis_idx(a: Axis) -> usize {
    match a {
        Axis::X => 0,
        Axis::Y => 1,
        Axis::Z => 2,
    }
}

/// Emits the virtual-blockIdx reconstruction from a linear task index:
/// `vx = t % gx; vy = (t / gx) % gy; vz = t / (gx * gy)`.
fn emit_coords_from_linear(
    prologue: &mut Vec<Instr>,
    task: Reg,
    tmp: Reg,
    vctaid: [Reg; 3],
    gx: Operand,
    gy: Operand,
) {
    prologue.push(
        Op::Bin {
            op: BinOp::Rem,
            d: vctaid[0],
            a: task.into(),
            b: gx,
        }
        .into(),
    );
    prologue.push(
        Op::Bin {
            op: BinOp::Div,
            d: tmp,
            a: task.into(),
            b: gx,
        }
        .into(),
    );
    prologue.push(
        Op::Bin {
            op: BinOp::Rem,
            d: vctaid[1],
            a: tmp.into(),
            b: gy,
        }
        .into(),
    );
    prologue.push(
        Op::Bin {
            op: BinOp::Div,
            d: vctaid[2],
            a: tmp.into(),
            b: gy,
        }
        .into(),
    );
}

/// The **slicing transformation** (paper Figure 3a, left).
///
/// The returned kernel takes four extra parameters — the linear block
/// offset and the original grid dimensions — and must be launched as a 1-D
/// grid of `count` blocks via [`Sliced::launch`]. Collectively the slices
/// `(0, c0), (c0, c1), …` perform exactly the original kernel's work.
///
/// ```
/// use tally_ptx::{parse_kernel, passes, interp::run_kernel};
///
/// let k = parse_kernel(r#"
///     .entry double(.param xs) {
///         mad r0, %ctaid.x, %ntid.x, %tid.x;
///         ld.global r1, [$xs + r0];
///         add r1, r1, r1;
///         st.global [$xs + r0], r1;
///         ret;
///     }"#).unwrap();
/// let sliced = passes::slicing(&k);
/// let mut mem: Vec<u64> = (0..32).collect();
/// // Two slices of 2 blocks each cover the 4-block grid.
/// for (off, count) in [(0, 2), (2, 2)] {
///     let launch = sliced.launch(&[0], off, count, (4, 1, 1), (8, 1, 1));
///     run_kernel(&sliced.kernel, &launch, &mut mem).unwrap();
/// }
/// assert_eq!(mem, (0..32).map(|v| v * 2).collect::<Vec<u64>>());
/// ```
pub fn slicing(original: &Kernel) -> Sliced {
    let mut k = original.clone();
    let n_orig_params = k.params.len();
    k.name = format!("{}__sliced", k.name);
    normalize_tail(&mut k);
    let p_off = k.add_param("__tally_off");
    let p_gx = k.add_param("__tally_gx");
    let p_gy = k.add_param("__tally_gy");
    let _p_gz = k.add_param("__tally_gz");
    let task = k.fresh_reg();
    let tmp = k.fresh_reg();
    let vctaid = [k.fresh_reg(), k.fresh_reg(), k.fresh_reg()];

    // Virtual linear block index = offset + blockIdx.x (slices are 1-D).
    let mut prologue: Vec<Instr> = Vec::new();
    prologue.push(
        Op::Bin {
            op: BinOp::Add,
            d: task,
            a: p_off,
            b: Operand::Sreg(Sreg::Ctaid(Axis::X)),
        }
        .into(),
    );
    emit_coords_from_linear(&mut prologue, task, tmp, vctaid, p_gx, p_gy);

    rewrite_block_identity(&mut k, vctaid, [p_gx, p_gy, _p_gz]);
    prologue.append(&mut k.body);
    k.body = prologue;
    k.validate().expect("slicing produces a valid kernel");
    Sliced {
        kernel: k,
        n_orig_params,
    }
}

impl Sliced {
    /// Builds the launch for one slice covering original linear block
    /// indices `[offset, offset + count)`.
    ///
    /// `orig_params` are the original kernel's arguments; `orig_grid` and
    /// `block` are the original launch geometry.
    ///
    /// # Panics
    ///
    /// Panics if the argument count mismatches the original parameter list
    /// or the slice range exceeds the original grid.
    pub fn launch(
        &self,
        orig_params: &[u64],
        offset: u64,
        count: u64,
        orig_grid: (u32, u32, u32),
        block: (u32, u32, u32),
    ) -> Launch {
        assert_eq!(
            orig_params.len(),
            self.n_orig_params,
            "argument count mismatch"
        );
        let total = orig_grid.0 as u64 * orig_grid.1 as u64 * orig_grid.2 as u64;
        assert!(count > 0 && offset + count <= total, "slice out of range");
        let mut params = orig_params.to_vec();
        params.extend([
            offset,
            orig_grid.0 as u64,
            orig_grid.1 as u64,
            orig_grid.2 as u64,
        ]);
        Launch {
            grid: (count as u32, 1, 1),
            block,
            params,
        }
    }

    /// Evenly partitions a grid of `total` blocks into `slices` contiguous
    /// ranges (the launch plan the scheduler iterates over).
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    pub fn plan(total: u64, slices: u64) -> Vec<(u64, u64)> {
        assert!(slices > 0, "at least one slice required");
        let slices = slices.min(total.max(1));
        let base = total / slices;
        let extra = total % slices;
        let mut out = Vec::with_capacity(slices as usize);
        let mut off = 0;
        for i in 0..slices {
            let len = base + u64::from(i < extra);
            if len == 0 {
                continue;
            }
            out.push((off, len));
            off += len;
        }
        out
    }
}

/// The **unified synchronization transformation** (paper Figure 3b).
///
/// Every `bar.sync` and every `ret` is rewritten to branch to a single
/// postpended synchronization block. There, a `bar.or.pred` establishes
/// whether any thread still wants to synchronize: if so, syncing threads
/// jump back to their recorded resume points (through a `brx` branch-target
/// table) while returned threads loop on the barrier; once no thread
/// syncs, all threads return together. The resulting kernel has exactly
/// one `ret`, and threads can never diverge across barrier and exit states.
pub fn unified_sync(original: &Kernel) -> Kernel {
    let mut k = Kernel {
        body: Vec::new(),
        ..original.clone()
    };
    let mut src = original.body.clone();
    // Normalize an implicit trailing return.
    match src.last() {
        Some(Instr {
            guard: None,
            op: Op::Ret | Op::Bra { .. } | Op::Brx { .. },
        }) => {}
        _ => src.push(Instr::new(Op::Ret)),
    }

    let is_sync = k.fresh_pred();
    let has_sync = k.fresh_pred();
    let pos = k.fresh_reg();
    let bb_sync = k.fresh_label("__tally_bb_sync");

    let mut resume_labels: Vec<crate::ir::Label> = Vec::new();
    let mut out: Vec<Instr> = Vec::new();
    let mut ret_pos_fixups: Vec<usize> = Vec::new();
    let mut skip_counter = 0u32;
    for instr in src {
        match instr.op {
            Op::Bar => {
                assert!(
                    instr.guard.is_none(),
                    "guarded barriers are divergent by construction and unsupported"
                );
                let resume = k.fresh_label(format!("__tally_resume_{}", resume_labels.len()));
                let idx = resume_labels.len() as u64;
                resume_labels.push(resume);
                out.push(set_pred_const(is_sync, true).into());
                out.push(
                    Op::Mov {
                        d: pos,
                        a: Operand::Imm(idx),
                    }
                    .into(),
                );
                out.push(Op::Bra { t: bb_sync }.into());
                out.push(Op::Label(resume).into());
            }
            Op::Ret => {
                // `pos` for returning threads indexes the bb_sync entry,
                // appended after all resume labels — patched below once the
                // resume count is known, so emit a placeholder and fix up.
                match instr.guard {
                    None => {
                        out.push(set_pred_const(is_sync, false).into());
                        ret_pos_fixups.push(out.len());
                        out.push(
                            Op::Mov {
                                d: pos,
                                a: Operand::Imm(0),
                            }
                            .into(),
                        );
                        out.push(Op::Bra { t: bb_sync }.into());
                    }
                    Some((p, polarity)) => {
                        let skip = k.fresh_label(format!("__tally_skip_{skip_counter}"));
                        skip_counter += 1;
                        out.push(Instr::guarded(p, !polarity, Op::Bra { t: skip }));
                        out.push(set_pred_const(is_sync, false).into());
                        ret_pos_fixups.push(out.len());
                        out.push(
                            Op::Mov {
                                d: pos,
                                a: Operand::Imm(0),
                            }
                            .into(),
                        );
                        out.push(Op::Bra { t: bb_sync }.into());
                        out.push(Op::Label(skip).into());
                    }
                }
            }
            Op::BarOrPred { .. } => {
                unreachable!("bar.or.pred only appears in already-transformed kernels")
            }
            _ => out.push(instr),
        }
    }

    // Patch the returning-thread `pos` placeholders now that the table size
    // is known: returning threads index the bb_sync entry appended after
    // all resume labels.
    let ret_idx = resume_labels.len() as u64;
    for i in ret_pos_fixups {
        if let Op::Mov {
            a: Operand::Imm(v), ..
        } = &mut out[i].op
        {
            *v = ret_idx;
        }
    }

    // The unified synchronization block.
    out.push(Op::Label(bb_sync).into());
    out.push(
        Op::BarOrPred {
            d: has_sync,
            a: is_sync,
        }
        .into(),
    );
    let mut table = resume_labels;
    table.push(bb_sync);
    out.push(Instr::guarded(
        has_sync,
        true,
        Op::Brx {
            table,
            idx: pos.into(),
        },
    ));
    out.push(Op::Ret.into());

    k.body = out;
    k.validate().expect("unified sync produces a valid kernel");
    k
}

/// The **preemption (persistent-thread-block) transformation**
/// (paper Figure 3a, right).
///
/// Applies [`unified_sync`] first, then wraps the body in a worker loop:
/// each iteration the block's leader thread reads the preemption flag and
/// fetches the next task index from a global counter (both device-memory
/// words supplied at launch), broadcasts it through shared memory, and all
/// threads either exit (preempted / work exhausted) or execute the original
/// body with `blockIdx` reconstructed from the task index.
///
/// Execution progress lives in the counter word: relaunching with the same
/// counter resumes exactly where the preempted launch stopped.
pub fn ptb(original: &Kernel) -> Ptb {
    let synced = unified_sync(original);
    let mut k = Kernel {
        body: Vec::new(),
        ..synced.clone()
    };
    let n_orig_params = original.params.len();
    k.name = format!("{}__ptb", original.name);

    // Broadcast slot appended after the body's shared allocation.
    let bcast = k.shared_words as u64;
    k.shared_words += 1;

    let p_ctr = k.add_param("__tally_ctr");
    let p_flag = k.add_param("__tally_flag");
    let p_gx = k.add_param("__tally_gx");
    let p_gy = k.add_param("__tally_gy");
    let p_gz = k.add_param("__tally_gz");
    let p_total = k.add_param("__tally_total");

    let r_tid = k.fresh_reg();
    let r_task = k.fresh_reg();
    let r_tmp = k.fresh_reg();
    let vctaid = [k.fresh_reg(), k.fresh_reg(), k.fresh_reg()];
    let p_leader = k.fresh_pred();
    let p_pre = k.fresh_pred();
    let p_exit = k.fresh_pred();
    let l_loop = k.fresh_label("__tally_loop");
    let l_fetched = k.fresh_label("__tally_fetched");
    let l_loop_end = k.fresh_label("__tally_loop_end");

    // linear tid = tid.x + ntid.x * (tid.y + ntid.y * tid.z)
    let mut out: Vec<Instr> = vec![
        Op::Mad {
            d: r_tid,
            a: Operand::Sreg(Sreg::Tid(Axis::Z)),
            b: Operand::Sreg(Sreg::Ntid(Axis::Y)),
            c: Operand::Sreg(Sreg::Tid(Axis::Y)),
        }
        .into(),
        Op::Mad {
            d: r_tid,
            a: r_tid.into(),
            b: Operand::Sreg(Sreg::Ntid(Axis::X)),
            c: Operand::Sreg(Sreg::Tid(Axis::X)),
        }
        .into(),
    ];
    out.push(
        Op::SetP {
            op: CmpOp::Eq,
            d: p_leader,
            a: r_tid.into(),
            b: Operand::Imm(0),
        }
        .into(),
    );

    out.push(Op::Label(l_loop).into());
    // Leader: read flag; preempted => sentinel task, else fetch from counter.
    out.push(Instr::guarded(p_leader, false, Op::Bra { t: l_fetched }));
    out.push(
        Op::Ld {
            space: Space::Global,
            d: r_tmp,
            addr: p_flag,
            off: Operand::Imm(0),
        }
        .into(),
    );
    out.push(
        Op::SetP {
            op: CmpOp::Ne,
            d: p_pre,
            a: r_tmp.into(),
            b: Operand::Imm(0),
        }
        .into(),
    );
    out.push(
        Op::Mov {
            d: r_task,
            a: p_total,
        }
        .into(),
    );
    out.push(Instr::guarded(
        p_pre,
        false,
        Op::AtomAdd {
            space: Space::Global,
            d: r_task,
            addr: p_ctr,
            off: Operand::Imm(0),
            a: Operand::Imm(1),
        },
    ));
    out.push(
        Op::St {
            space: Space::Shared,
            addr: Operand::Imm(bcast),
            off: Operand::Imm(0),
            a: r_task.into(),
        }
        .into(),
    );
    out.push(Op::Label(l_fetched).into());
    out.push(Op::Bar.into());
    out.push(
        Op::Ld {
            space: Space::Shared,
            d: r_task,
            addr: Operand::Imm(bcast),
            off: Operand::Imm(0),
        }
        .into(),
    );
    out.push(Op::Bar.into());
    out.push(
        Op::SetP {
            op: CmpOp::Ge,
            d: p_exit,
            a: r_task.into(),
            b: p_total,
        }
        .into(),
    );
    out.push(Instr::guarded(p_exit, true, Op::Ret));
    emit_coords_from_linear(&mut out, r_task, r_tmp, vctaid, p_gx, p_gy);

    // Splice in the unified-sync'd body with block identity virtualized and
    // its single `ret` redirected to the loop tail.
    let mut body = synced.body;
    let mut spliced = Kernel { body, ..k.clone() };
    rewrite_block_identity(&mut spliced, vctaid, [p_gx, p_gy, p_gz]);
    body = spliced.body;
    for instr in &mut body {
        if matches!(instr.op, Op::Ret) && instr.guard.is_none() {
            instr.op = Op::Bra { t: l_loop_end };
        } else if matches!(instr.op, Op::Ret) {
            unreachable!("unified sync leaves no guarded ret");
        }
    }
    out.append(&mut body);

    out.push(Op::Label(l_loop_end).into());
    out.push(Op::Bar.into());
    out.push(Op::Bra { t: l_loop }.into());

    k.body = out;
    k.validate().expect("ptb produces a valid kernel");
    Ptb {
        kernel: k,
        n_orig_params,
    }
}

impl Ptb {
    /// Builds a worker launch.
    ///
    /// * `orig_params` — the original kernel's arguments.
    /// * `workers` — number of persistent worker blocks.
    /// * `orig_grid` / `block` — the original launch geometry.
    /// * `ctr_addr` / `flag_addr` — global-memory word addresses of the task
    ///   counter and preemption flag. To start from block `offset`, store
    ///   `offset` in the counter word before launching; to resume, simply
    ///   relaunch with the counter left as the preempted launch's drain.
    ///
    /// # Panics
    ///
    /// Panics on argument-count mismatch or `workers == 0`.
    pub fn launch(
        &self,
        orig_params: &[u64],
        workers: u32,
        orig_grid: (u32, u32, u32),
        block: (u32, u32, u32),
        ctr_addr: u64,
        flag_addr: u64,
    ) -> Launch {
        assert_eq!(
            orig_params.len(),
            self.n_orig_params,
            "argument count mismatch"
        );
        assert!(workers > 0, "PTB launch needs at least one worker");
        let total = orig_grid.0 as u64 * orig_grid.1 as u64 * orig_grid.2 as u64;
        let mut params = orig_params.to_vec();
        params.extend([
            ctr_addr,
            flag_addr,
            orig_grid.0 as u64,
            orig_grid.1 as u64,
            orig_grid.2 as u64,
            total,
        ]);
        Launch {
            grid: (workers, 1, 1),
            block,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_kernel, GridExec, InterpError};
    use crate::parse::parse_kernel;

    /// A 2-D grid kernel with a barrier and shared memory: each block
    /// reverses an 8-element tile in shared memory then writes it out,
    /// tagged with its 2-D block coords.
    fn tile_reverse() -> Kernel {
        parse_kernel(
            r#"
            .entry tile_reverse(.param out) {
                .shared 8;
                mov r0, %tid.x;
                st.shared [r0], r0;
                bar.sync;
                sub r1, %ntid.x, r0;
                sub r1, r1, 1;
                ld.shared r2, [r1];
                mad r3, %ctaid.y, %nctaid.x, %ctaid.x;  // linear block
                mul r3, r3, %ntid.x;
                add r3, r3, r0;
                mad r4, %ctaid.x, 10, r2;               // value tags block x
                st.global [$out + r3], r4;
                ret;
            }
            "#,
        )
        .expect("parses")
    }

    fn reference_memory() -> Vec<u64> {
        let k = tile_reverse();
        let mut mem = vec![0u64; 6 * 8];
        let launch = Launch {
            grid: (3, 2, 1),
            block: (8, 1, 1),
            params: vec![0],
        };
        run_kernel(&k, &launch, &mut mem).expect("reference runs");
        mem
    }

    #[test]
    fn slicing_covers_grid_in_any_partition() {
        let k = tile_reverse();
        let reference = reference_memory();
        let sliced = slicing(&k);
        for slices in [1, 2, 3, 6] {
            let mut mem = vec![0u64; 6 * 8];
            for (off, count) in Sliced::plan(6, slices) {
                let launch = sliced.launch(&[0], off, count, (3, 2, 1), (8, 1, 1));
                run_kernel(&sliced.kernel, &launch, &mut mem).expect("slice runs");
            }
            assert_eq!(mem, reference, "partition into {slices} slices diverged");
        }
    }

    #[test]
    fn slice_plan_is_a_partition() {
        for total in [1u64, 5, 16, 97] {
            for slices in [1u64, 2, 3, 7, 100] {
                let plan = Sliced::plan(total, slices);
                let mut expect = 0;
                for (off, count) in plan {
                    assert_eq!(off, expect);
                    assert!(count > 0);
                    expect += count;
                }
                assert_eq!(expect, total);
            }
        }
    }

    #[test]
    fn unified_sync_preserves_semantics() {
        let k = tile_reverse();
        let synced = unified_sync(&k);
        let reference = reference_memory();
        let mut mem = vec![0u64; 6 * 8];
        let launch = Launch {
            grid: (3, 2, 1),
            block: (8, 1, 1),
            params: vec![0],
        };
        run_kernel(&synced, &launch, &mut mem).expect("synced kernel runs");
        assert_eq!(mem, reference);
        // Exactly one ret remains.
        let rets = synced
            .body
            .iter()
            .filter(|i| matches!(i.op, Op::Ret))
            .count();
        assert_eq!(rets, 1);
    }

    #[test]
    fn unified_sync_fixes_divergent_early_return() {
        // Threads with tid < 2 return before the barrier: plain execution
        // hangs (divergence), the unified-sync form must not.
        let k = parse_kernel(
            r#"
            .entry early(.param out) {
                .shared 4;
                mov r0, %tid.x;
                setp.lt p0, r0, 2;
                @p0 ret;
                st.shared [r0], r0;
                bar.sync;
                ld.shared r1, [r0];
                st.global [$out + r0], r1;
                ret;
            }
            "#,
        )
        .expect("parses");
        let launch = Launch::linear(1, 4, vec![0]);
        let mut mem = vec![0u64; 4];
        let err = run_kernel(&k, &launch, &mut mem).unwrap_err();
        assert!(matches!(err, InterpError::BarrierDivergence { .. }));

        let synced = unified_sync(&k);
        let mut mem = vec![0u64; 4];
        run_kernel(&synced, &launch, &mut mem).expect("no divergence after unified sync");
        assert_eq!(mem, vec![0, 0, 2, 3]);
    }

    #[test]
    fn ptb_completes_all_tasks_with_any_worker_count() {
        let k = tile_reverse();
        let reference = reference_memory();
        let transformed = ptb(&k);
        for workers in [1u32, 2, 3, 6, 8] {
            // Device layout: out in 0..48, counter at 48, flag at 49.
            let mut mem = vec![0u64; 50];
            let launch = transformed.launch(&[0], workers, (3, 2, 1), (8, 1, 1), 48, 49);
            run_kernel(&transformed.kernel, &launch, &mut mem).expect("ptb runs");
            assert_eq!(&mem[..48], &reference[..], "{workers} workers diverged");
            assert!(mem[48] >= 6, "counter covers all tasks");
        }
    }

    #[test]
    fn ptb_preempt_then_resume_matches_reference() {
        let k = tile_reverse();
        let reference = reference_memory();
        let transformed = ptb(&k);
        let mut mem = vec![0u64; 50];
        let launch = transformed.launch(&[0], 2, (3, 2, 1), (8, 1, 1), 48, 49);

        // Run the two workers interleaved; set the preemption flag after a
        // few hundred instructions.
        let mut exec = GridExec::new(&transformed.kernel, launch.clone()).expect("valid");
        let mut flipped = false;
        let mut steps = 0;
        while !exec.all_done() {
            for b in 0..exec.num_blocks() {
                let _ = exec.step_block(b, 150, &mut mem).expect("steps");
            }
            steps += 1;
            if steps == 3 && !flipped {
                mem[49] = 1; // preempt!
                flipped = true;
            }
            assert!(steps < 10_000, "workers must drain after preemption");
        }
        let done = mem[48];
        assert!(
            done < 6,
            "preemption should stop before all tasks (did {done})"
        );

        // Resume: clear the flag, relaunch with the same counter.
        mem[49] = 0;
        run_kernel(&transformed.kernel, &launch, &mut mem).expect("resume runs");
        assert_eq!(&mem[..48], &reference[..]);
    }

    #[test]
    fn ptb_on_kernel_with_early_returns() {
        // Guarded returns + barrier: the composition unified-sync → ptb
        // must still be exact.
        // All threads zero the tile first (shared memory is undefined at
        // block start on real GPUs, so a correct kernel initializes what it
        // reads); inactive lanes then return early, before the second
        // barrier — the divergence hazard unified-sync exists for.
        let k = parse_kernel(
            r#"
            .entry early(.param out, .param n) {
                .shared 4;
                mov r1, %tid.x;
                st.shared [r1], 0;
                bar.sync;
                mad r0, %ctaid.x, %ntid.x, r1;
                setp.ge p0, r0, $n;
                @p0 ret;
                st.shared [r1], r0;
                bar.sync;
                sub r2, %ntid.x, 1;
                sub r2, r2, r1;
                ld.shared r3, [r2];
                st.global [$out + r0], r3;
                ret;
            }
            "#,
        )
        .expect("parses");
        // Reference: n = 10 limits the last block's threads.
        // NOTE: with n=10, block 2 has threads 8..11 active-mixed; shared
        // reads of inactive lanes read zeros — same in both executions.
        let launch = Launch {
            grid: (3, 1, 1),
            block: (4, 1, 1),
            params: vec![0, 10],
        };
        let mut reference = vec![0u64; 16];
        run_kernel(&unified_sync(&k), &launch, &mut reference).expect("reference");

        let transformed = ptb(&k);
        let mut mem = [0u64; 16];
        // out in 0..12, counter at 12... keep out 0..12, ctr 13, flag 14.
        let mut mem2 = vec![0u64; 16];
        let pl = transformed.launch(&[0, 10], 2, (3, 1, 1), (4, 1, 1), 13, 14);
        run_kernel(&transformed.kernel, &pl, &mut mem2).expect("ptb runs");
        mem.copy_from_slice(&mem2);
        mem[13] = 0;
        mem[14] = 0;
        let mut ref_clean = reference.clone();
        ref_clean[13] = 0;
        ref_clean[14] = 0;
        assert_eq!(&mem[..12], &ref_clean[..12]);
    }
}
