//! Parser for the textual mini-PTX form.
//!
//! The grammar is line-oriented; instructions are separated by `;` or
//! newlines, `//` starts a comment. See the crate docs for a full example.
//!
//! ```
//! use tally_ptx::parse_kernel;
//!
//! let k = parse_kernel(r#"
//!     .entry axpy(.param a, .param xs, .param ys, .param n) {
//!         mov r0, %ctaid.x;
//!         mad r1, r0, %ntid.x, %tid.x;   // global thread index
//!         setp.ge p0, r1, $n;
//!         @p0 ret;
//!         ld.global r2, [$xs + r1];
//!         mul r3, r2, $a;
//!         ld.global r4, [$ys + r1];
//!         add r5, r3, r4;
//!         st.global [$ys + r1], r5;
//!         ret;
//!     }
//! "#).unwrap();
//! assert_eq!(k.name, "axpy");
//! assert_eq!(k.params.len(), 4);
//! ```

#[allow(clippy::disallowed_types)] // label table: point lookups only
use std::collections::HashMap;
use std::fmt;

use crate::ir::{Axis, BinOp, CmpOp, Kernel, Label, Op, Operand, Pred, Reg, Space, Sreg};

/// A parse failure, with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a single kernel from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending line; the parsed
/// kernel is additionally [validated](Kernel::validate).
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    Parser::new(src).parse()
}

struct Parser<'s> {
    src: &'s str,
    kernel: Kernel,
    #[allow(clippy::disallowed_types)] // name → label point lookups only
    labels: HashMap<String, Label>,
    max_reg: i32,
    max_pred: i32,
}

impl<'s> Parser<'s> {
    #[allow(clippy::disallowed_types)] // label table (see field note)
    fn new(src: &'s str) -> Self {
        Parser {
            src,
            kernel: Kernel::new(""),
            labels: HashMap::new(),
            max_reg: -1,
            max_pred: -1,
        }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line,
            message: msg.into(),
        })
    }

    fn parse(mut self) -> Result<Kernel, ParseError> {
        let mut in_body = false;
        let mut saw_close = false;
        for (ln, raw) in self.src.lines().enumerate() {
            let line_no = ln + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            for stmt in line.split(';') {
                let stmt = stmt.trim();
                if stmt.is_empty() {
                    continue;
                }
                if !in_body {
                    if let Some(rest) = stmt.strip_prefix(".entry") {
                        self.parse_header(rest.trim(), line_no)?;
                        in_body = true;
                    } else {
                        return self.err(line_no, format!("expected `.entry`, found `{stmt}`"));
                    }
                } else if stmt == "}" {
                    saw_close = true;
                } else if saw_close {
                    return self.err(line_no, "content after closing `}`");
                } else {
                    self.parse_stmt(stmt, line_no)?;
                }
            }
        }
        if !in_body {
            return self.err(1, "no `.entry` found");
        }
        if !saw_close {
            return self.err(self.src.lines().count(), "missing closing `}`");
        }
        self.kernel.num_regs = (self.max_reg + 1) as u16;
        self.kernel.num_preds = (self.max_pred + 1) as u16;
        self.kernel.validate().map_err(|e| ParseError {
            line: 0,
            message: e.to_string(),
        })?;
        Ok(self.kernel)
    }

    fn parse_header(&mut self, rest: &str, line: usize) -> Result<(), ParseError> {
        // name(.param a, .param b) {
        let Some(open) = rest.find('(') else {
            return self.err(line, "expected `(` in `.entry` header");
        };
        let Some(close) = rest.find(')') else {
            return self.err(line, "expected `)` in `.entry` header");
        };
        let name = rest[..open].trim();
        if name.is_empty() {
            return self.err(line, "kernel name missing");
        }
        self.kernel.name = name.to_string();
        let params = &rest[open + 1..close];
        for p in params.split(',') {
            let p = p.trim();
            if p.is_empty() {
                continue;
            }
            let Some(pname) = p.strip_prefix(".param") else {
                return self.err(line, format!("expected `.param <name>`, found `{p}`"));
            };
            self.kernel.add_param(pname.trim());
        }
        let tail = rest[close + 1..].trim();
        if tail != "{" && !tail.is_empty() {
            return self.err(line, format!("unexpected `{tail}` after parameter list"));
        }
        Ok(())
    }

    fn parse_stmt(&mut self, stmt: &str, line: usize) -> Result<(), ParseError> {
        // Shared-memory declaration: `.shared N`
        if let Some(count) = stmt.strip_prefix(".shared") {
            let words: u32 = count.trim().parse().map_err(|_| ParseError {
                line,
                message: format!("bad `.shared` count `{}`", count.trim()),
            })?;
            self.kernel.shared_words = words;
            return Ok(());
        }
        // Label definition: `NAME:`
        if let Some(name) = stmt.strip_suffix(':') {
            if is_ident(name) {
                let l = self.label(name);
                self.kernel.push(Op::Label(l));
                return Ok(());
            }
        }
        // Guard: `@p0` or `@!p0`
        let (guard, rest) = if let Some(rest) = stmt.strip_prefix('@') {
            let (g, r) = rest.split_once(char::is_whitespace).ok_or(ParseError {
                line,
                message: "guard must be followed by an instruction".into(),
            })?;
            let (polarity, pname) = if let Some(n) = g.strip_prefix('!') {
                (false, n)
            } else {
                (true, g)
            };
            let p = self.pred(pname, line)?;
            (Some((p, polarity)), r.trim())
        } else {
            (None, stmt)
        };
        let (mnemonic, args) = match rest.split_once(char::is_whitespace) {
            Some((m, a)) => (m, a.trim()),
            None => (rest, ""),
        };
        let op = self.parse_op(mnemonic, args, line)?;
        match guard {
            Some((p, polarity)) => self.kernel.push_guarded(p, polarity, op),
            None => self.kernel.push(op),
        }
        Ok(())
    }

    fn parse_op(&mut self, m: &str, args: &str, line: usize) -> Result<Op, ParseError> {
        let m = m.strip_prefix("bin.").unwrap_or(m);
        if let Some(op) = bin_op(m) {
            let (d, a, b) = self.three(args, line)?;
            return Ok(Op::Bin {
                op,
                d: self.dst_reg(&d, line)?,
                a: self.operand(&a, line)?,
                b: self.operand(&b, line)?,
            });
        }
        match m {
            "mov" => {
                let (d, a) = self.two(args, line)?;
                Ok(Op::Mov {
                    d: self.dst_reg(&d, line)?,
                    a: self.operand(&a, line)?,
                })
            }
            "mad" => {
                let (d, a, b, c) = self.four(args, line)?;
                Ok(Op::Mad {
                    d: self.dst_reg(&d, line)?,
                    a: self.operand(&a, line)?,
                    b: self.operand(&b, line)?,
                    c: self.operand(&c, line)?,
                })
            }
            "notp" => {
                let (d, a) = self.two(args, line)?;
                Ok(Op::NotP {
                    d: self.pred(&d, line)?,
                    a: self.pred(&a, line)?,
                })
            }
            "bar.sync" | "bar" => Ok(Op::Bar),
            "bar.or.pred" => {
                let (d, a) = self.two(args, line)?;
                Ok(Op::BarOrPred {
                    d: self.pred(&d, line)?,
                    a: self.pred(&a, line)?,
                })
            }
            "bra" => {
                if !is_ident(args) {
                    return self.err(line, format!("bad branch target `{args}`"));
                }
                let t = self.label(args);
                Ok(Op::Bra { t })
            }
            "brx" => {
                // brx idx, [L0, L1, ...]
                let Some((idx, table)) = args.split_once(',') else {
                    return self.err(line, "brx needs an index and a target table");
                };
                let idx = self.operand(idx.trim(), line)?;
                let table = table.trim();
                let Some(inner) = table.strip_prefix('[').and_then(|t| t.strip_suffix(']')) else {
                    return self.err(line, "brx table must be `[L0, L1, ...]`");
                };
                let mut labels = Vec::new();
                for t in inner.split(',') {
                    let t = t.trim();
                    if !is_ident(t) {
                        return self.err(line, format!("bad brx target `{t}`"));
                    }
                    labels.push(self.label(t));
                }
                Ok(Op::Brx { table: labels, idx })
            }
            "ret" | "exit" => Ok(Op::Ret),
            _ if m.starts_with("setp.") => {
                let op = cmp_op(&m[5..]).ok_or_else(|| ParseError {
                    line,
                    message: format!("bad setp op `{m}`"),
                })?;
                let (d, a, b) = self.three(args, line)?;
                Ok(Op::SetP {
                    op,
                    d: self.pred(&d, line)?,
                    a: self.operand(&a, line)?,
                    b: self.operand(&b, line)?,
                })
            }
            _ if m.starts_with("ld.") => {
                let space = self.space(&m[3..], line)?;
                let (d, addr) = self.two(args, line)?;
                let (base, off) = self.address(&addr, line)?;
                Ok(Op::Ld {
                    space,
                    d: self.dst_reg(&d, line)?,
                    addr: base,
                    off,
                })
            }
            _ if m.starts_with("st.") => {
                let space = self.space(&m[3..], line)?;
                let (addr, a) = self.two(args, line)?;
                let (base, off) = self.address(&addr, line)?;
                Ok(Op::St {
                    space,
                    addr: base,
                    off,
                    a: self.operand(&a, line)?,
                })
            }
            _ if m.starts_with("atom.add.") => {
                let space = self.space(&m[9..], line)?;
                let (d, addr, a) = self.three(args, line)?;
                let (base, off) = self.address(&addr, line)?;
                Ok(Op::AtomAdd {
                    space,
                    d: self.dst_reg(&d, line)?,
                    addr: base,
                    off,
                    a: self.operand(&a, line)?,
                })
            }
            _ => self.err(line, format!("unknown mnemonic `{m}`")),
        }
    }

    // ---- small helpers ----

    fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.kernel.fresh_label(name);
        self.labels.insert(name.to_string(), l);
        l
    }

    fn split_args(&self, args: &str, n: usize, line: usize) -> Result<Vec<String>, ParseError> {
        // Split on commas that are not inside brackets.
        let mut parts = Vec::new();
        let mut depth = 0usize;
        let mut cur = String::new();
        for ch in args.chars() {
            match ch {
                '[' => {
                    depth += 1;
                    cur.push(ch);
                }
                ']' => {
                    depth = depth.saturating_sub(1);
                    cur.push(ch);
                }
                ',' if depth == 0 => {
                    parts.push(cur.trim().to_string());
                    cur = String::new();
                }
                _ => cur.push(ch),
            }
        }
        if !cur.trim().is_empty() {
            parts.push(cur.trim().to_string());
        }
        if parts.len() != n {
            return self.err(
                line,
                format!("expected {n} operands, found {} in `{args}`", parts.len()),
            );
        }
        Ok(parts)
    }

    fn two(&self, args: &str, line: usize) -> Result<(String, String), ParseError> {
        let v = self.split_args(args, 2, line)?;
        Ok((v[0].clone(), v[1].clone()))
    }

    fn three(&self, args: &str, line: usize) -> Result<(String, String, String), ParseError> {
        let v = self.split_args(args, 3, line)?;
        Ok((v[0].clone(), v[1].clone(), v[2].clone()))
    }

    fn four(
        &self,
        args: &str,
        line: usize,
    ) -> Result<(String, String, String, String), ParseError> {
        let v = self.split_args(args, 4, line)?;
        Ok((v[0].clone(), v[1].clone(), v[2].clone(), v[3].clone()))
    }

    fn dst_reg(&mut self, s: &str, line: usize) -> Result<Reg, ParseError> {
        match self.operand(s, line)? {
            Operand::Reg(r) => Ok(r),
            _ => self.err(line, format!("destination must be a register, found `{s}`")),
        }
    }

    fn pred(&mut self, s: &str, line: usize) -> Result<Pred, ParseError> {
        let s = s.trim();
        if let Some(n) = s.strip_prefix('p') {
            if let Ok(i) = n.parse::<u16>() {
                self.max_pred = self.max_pred.max(i as i32);
                return Ok(Pred(i));
            }
        }
        self.err(line, format!("expected predicate register, found `{s}`"))
    }

    fn space(&self, s: &str, line: usize) -> Result<Space, ParseError> {
        match s {
            "global" => Ok(Space::Global),
            "shared" => Ok(Space::Shared),
            _ => self.err(line, format!("unknown memory space `{s}`")),
        }
    }

    fn address(&mut self, s: &str, line: usize) -> Result<(Operand, Operand), ParseError> {
        let s = s.trim();
        let Some(inner) = s.strip_prefix('[').and_then(|t| t.strip_suffix(']')) else {
            return self.err(
                line,
                format!("address must be `[base]` or `[base +/- off]`, found `{s}`"),
            );
        };
        let inner = inner.trim();
        // Split on a top-level + or - ; the offset may be any operand
        // (register-indexed addressing), a negative constant becomes a
        // two's-complement immediate.
        for (i, ch) in inner.char_indices().skip(1) {
            if ch == '+' || ch == '-' {
                let base = self.operand(inner[..i].trim(), line)?;
                let off_str = inner[i + 1..].trim();
                if ch == '-' {
                    let Ok(off) = off_str.parse::<i64>() else {
                        return self.err(line, format!("`-` offsets must be constant in `{s}`"));
                    };
                    return Ok((base, Operand::Imm((-off) as u64)));
                }
                let off = self.operand(off_str, line)?;
                return Ok((base, off));
            }
        }
        Ok((self.operand(inner, line)?, Operand::Imm(0)))
    }

    fn operand(&mut self, s: &str, line: usize) -> Result<Operand, ParseError> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix('$') {
            let Some(i) = self.kernel.param_index(rest) else {
                return self.err(line, format!("unknown parameter `${rest}`"));
            };
            return Ok(Operand::Param(i));
        }
        if let Some(rest) = s.strip_prefix('%') {
            return self.sreg(rest).map(Operand::Sreg).ok_or(ParseError {
                line,
                message: format!("unknown special register `%{rest}`"),
            });
        }
        if let Some(n) = s.strip_prefix('r') {
            if let Ok(i) = n.parse::<u16>() {
                self.max_reg = self.max_reg.max(i as i32);
                return Ok(Operand::Reg(Reg(i)));
            }
        }
        if let Ok(v) = s.parse::<i64>() {
            return Ok(Operand::Imm(v as u64));
        }
        if let Some(hex) = s.strip_prefix("0x") {
            if let Ok(v) = u64::from_str_radix(hex, 16) {
                return Ok(Operand::Imm(v));
            }
        }
        self.err(line, format!("cannot parse operand `{s}`"))
    }

    fn sreg(&self, s: &str) -> Option<Sreg> {
        let (base, axis) = s.split_once('.')?;
        let axis = match axis {
            "x" => Axis::X,
            "y" => Axis::Y,
            "z" => Axis::Z,
            _ => return None,
        };
        match base {
            "tid" => Some(Sreg::Tid(axis)),
            "ntid" => Some(Sreg::Ntid(axis)),
            "ctaid" => Some(Sreg::Ctaid(axis)),
            "nctaid" => Some(Sreg::Nctaid(axis)),
            _ => None,
        }
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn bin_op(m: &str) -> Option<BinOp> {
    Some(match m {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn cmp_op(m: &str) -> Option<CmpOp> {
    Some(match m {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_kernel, Launch};

    #[test]
    fn parses_and_runs_vecadd() {
        let k = parse_kernel(
            r#"
            .entry vecadd(.param xs, .param ys, .param out, .param n) {
                mov r0, %ctaid.x;
                mad r1, r0, %ntid.x, %tid.x;
                setp.ge p0, r1, $n;
                @p0 ret;
                ld.global r2, [$xs + r1];
                ld.global r3, [$ys + r1];
                add r4, r2, r3;
                add r5, $out, r1;
                st.global [r5], r4;
                ret;
            }
            "#,
        )
        .expect("parses");
        assert_eq!(k.name, "vecadd");
        let mut mem = vec![0u64; 24];
        for i in 0..8 {
            mem[i] = i as u64; // xs at 0..8
            mem[8 + i] = 10 * i as u64; // ys at 8..16
        }
        run_kernel(&k, &Launch::linear(2, 4, vec![0, 8, 16, 8]), &mut mem).expect("runs");
        assert_eq!(&mem[16..24], &[0, 11, 22, 33, 44, 55, 66, 77]);
    }

    #[test]
    fn register_indexed_addressing() {
        let k = parse_kernel(
            r#"
            .entry gather(.param a, .param out) {
                mov r1, %tid.x;
                ld.global r0, [$a + r1];
                st.global [$out + r1], r0;
                ret;
            }
            "#,
        )
        .expect("parses");
        let mut mem = vec![5, 6, 7, 8, 0, 0, 0, 0];
        run_kernel(&k, &Launch::linear(1, 4, vec![0, 4]), &mut mem).expect("runs");
        assert_eq!(&mem[4..], &[5, 6, 7, 8]);
    }

    #[test]
    fn labels_guards_and_loops() {
        // Sum 0..n into out[0] with a loop in a single thread.
        let k = parse_kernel(
            r#"
            .entry sum(.param n, .param out) {
                mov r0, 0;       // i
                mov r1, 0;       // acc
            LOOP:
                setp.ge p0, r0, $n;
                @p0 bra DONE;
                add r1, r1, r0;
                add r0, r0, 1;
                bra LOOP;
            DONE:
                st.global [$out], r1;
                ret;
            }
            "#,
        )
        .expect("parses");
        let mut mem = vec![0u64; 1];
        run_kernel(&k, &Launch::linear(1, 1, vec![10, 0]), &mut mem).expect("runs");
        assert_eq!(mem[0], 45);
    }

    #[test]
    fn shared_decl_and_negative_offsets() {
        let k = parse_kernel(
            r#"
            .entry shmem(.param out) {
                .shared 2;
                mov r0, 1;
                st.shared [r0 - 1], 42;
                bar.sync;
                ld.shared r1, [r0 + 1 - 2];
                st.global [$out], r1;
                ret;
            }
            "#,
        );
        // `r0 + 1 - 2` is not valid (two operators) => expect error there.
        assert!(k.is_err());
        let k = parse_kernel(
            r#"
            .entry shmem(.param out) {
                .shared 2;
                mov r0, 1;
                st.shared [r0 - 1], 42;
                bar.sync;
                ld.shared r1, [r0 - 1];
                st.global [$out], r1;
                ret;
            }
            "#,
        )
        .expect("parses");
        assert_eq!(k.shared_words, 2);
        let mut mem = vec![0u64; 1];
        run_kernel(&k, &Launch::linear(1, 2, vec![0]), &mut mem).expect("runs");
        assert_eq!(mem[0], 42);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_kernel(".entry k() {\n frobnicate r0;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_param_rejected() {
        let err = parse_kernel(".entry k() { mov r0, $missing; ret; }").unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn brx_parses_table() {
        let k = parse_kernel(
            r#"
            .entry jump(.param out) {
                mov r0, 1;
                brx r0, [A, B];
            A:
                st.global [$out], 10;
                ret;
            B:
                st.global [$out], 20;
                ret;
            }
            "#,
        )
        .expect("parses");
        let mut mem = vec![0u64; 1];
        run_kernel(&k, &Launch::linear(1, 1, vec![0]), &mut mem).expect("runs");
        assert_eq!(mem[0], 20);
    }
}
