//! # tally-ptx — a mini-PTX IR with Tally's kernel transformation passes
//!
//! Tally's central mechanism (paper §4.1) is a set of *task-agnostic* device
//! code transformations that retrofit block-level scheduling onto unmodified
//! GPU kernels:
//!
//! * [`passes::slicing`] — launch any contiguous chunk of a kernel's grid as
//!   a sub-kernel by offsetting `blockIdx`;
//! * [`passes::unified_sync`] — reroute every barrier and return through one
//!   synchronization block so a block's threads always exit together;
//! * [`passes::ptb`] — rewrite the kernel into persistent-thread-block form:
//!   a worker loop over a global task counter with a preemption flag, giving
//!   microsecond-scale, semantics-preserving preemption.
//!
//! This crate implements those passes over a small but honest PTX-like IR
//! ([`ir`]) with a parser ([`parse_kernel`]), a printer, and a functional
//! [interpreter](interp) used to verify — per kernel, per configuration —
//! that transformed executions produce bit-identical memory to the original.
//!
//! ```
//! use tally_ptx::{samples, passes, interp::{run_kernel, Launch}};
//!
//! // Take a reduction kernel with barriers and early returns…
//! let k = samples::block_reduce_sum();
//! // …make it preemptible…
//! let ptb = passes::ptb(&k);
//! // …and run it with 2 persistent workers instead of 4 blocks.
//! let mut mem = vec![0u64; 40];
//! for i in 0..32 { mem[i] = 1; }
//! // input at 0, out at 32, counter at 34, flag at 35.
//! let launch = ptb.launch(&[0, 32, 32], 2, (4, 1, 1), (8, 1, 1), 34, 35);
//! run_kernel(&ptb.kernel, &launch, &mut mem).unwrap();
//! assert_eq!(mem[32], 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod interp;
pub mod ir;
pub mod parse;
pub mod passes;
mod print;
pub mod samples;

pub use ir::Kernel;
pub use parse::{parse_kernel, ParseError};
