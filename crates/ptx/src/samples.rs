//! Canonical sample kernels used by tests, examples, and documentation.
//!
//! Each constructor returns a validated [`Kernel`] written in the textual
//! mini-PTX form; the accompanying helpers build reference launches.

use crate::ir::Kernel;
use crate::parse::parse_kernel;

/// `ys[i] = a * xs[i] + ys[i]` over `n` elements — the classic saxpy, with
/// a bounds check and early return.
pub fn saxpy() -> Kernel {
    parse_kernel(
        r#"
        .entry saxpy(.param a, .param xs, .param ys, .param n) {
            mad r0, %ctaid.x, %ntid.x, %tid.x;
            setp.ge p0, r0, $n;
            @p0 ret;
            ld.global r1, [$xs + r0];
            mul r1, r1, $a;
            ld.global r2, [$ys + r0];
            add r1, r1, r2;
            st.global [$ys + r0], r1;
            ret;
        }
        "#,
    )
    .expect("saxpy parses")
}

/// Per-block shared-memory tile reversal with a barrier: block `b` writes
/// `out[b*ntid + t] = in[b*ntid + (ntid-1-t)]`.
pub fn tile_reverse() -> Kernel {
    parse_kernel(
        r#"
        .entry tile_reverse(.param input, .param out) {
            .shared 64;
            mov r0, %tid.x;
            mad r1, %ctaid.x, %ntid.x, r0;
            ld.global r2, [$input + r1];
            st.shared [r0], r2;
            bar.sync;
            sub r3, %ntid.x, r0;
            sub r3, r3, 1;
            ld.shared r4, [r3];
            st.global [$out + r1], r4;
            ret;
        }
        "#,
    )
    .expect("tile_reverse parses")
}

/// Block-local tree reduction (sum) over a power-of-two block size, with a
/// barrier per step; block sums are combined with a global atomic — a
/// miniature of the reduction kernels ubiquitous in DL workloads.
pub fn block_reduce_sum() -> Kernel {
    parse_kernel(
        r#"
        .entry block_reduce_sum(.param input, .param out, .param n) {
            .shared 64;
            mov r0, %tid.x;
            mad r1, %ctaid.x, %ntid.x, r0;
            mov r2, 0;
            setp.ge p0, r1, $n;
            @p0 bra PAD;
            ld.global r2, [$input + r1];
        PAD:
            st.shared [r0], r2;
            bar.sync;
            shr r3, %ntid.x, 1;     // stride
        LOOP:
            setp.eq p1, r3, 0;
            @p1 bra DONE;
            setp.ge p2, r0, r3;
            @p2 bra SKIP;
            add r4, r0, r3;
            ld.shared r5, [r4];
            ld.shared r6, [r0];
            add r6, r6, r5;
            st.shared [r0], r6;
        SKIP:
            bar.sync;
            shr r3, r3, 1;
            bra LOOP;
        DONE:
            setp.ne p3, r0, 0;
            @p3 ret;
            ld.shared r7, [r0];
            atom.add.global r8, [$out], r7;
            ret;
        }
        "#,
    )
    .expect("block_reduce_sum parses")
}

/// A 2-D grid kernel (grid `(gx, gy, 1)`) computing
/// `out[y][x] = x * 1000 + y` per block — exercises multi-dimensional
/// `blockIdx` reconstruction in the transformation passes.
pub fn grid2d_tag() -> Kernel {
    parse_kernel(
        r#"
        .entry grid2d_tag(.param out) {
            mad r0, %ctaid.y, %nctaid.x, %ctaid.x;   // linear block
            mad r1, r0, %ntid.x, %tid.x;             // linear thread
            mad r2, %ctaid.x, 1000, %ctaid.y;        // tag
            add r2, r2, %tid.x;
            st.global [$out + r1], r2;
            ret;
        }
        "#,
    )
    .expect("grid2d_tag parses")
}

/// Histogram over 16 bins using shared-memory atomics, a barrier, then a
/// flush to global atomics — a kernel whose correctness is very sensitive
/// to block scheduling mistakes.
pub fn histogram16() -> Kernel {
    parse_kernel(
        r#"
        .entry histogram16(.param input, .param hist, .param n) {
            .shared 16;
            mov r0, %tid.x;
            // zero the block-local bins (first 16 threads).
            setp.ge p0, r0, 16;
            @p0 bra ZEROED;
            st.shared [r0], 0;
        ZEROED:
            bar.sync;
            mad r1, %ctaid.x, %ntid.x, r0;
            setp.ge p1, r1, $n;
            @p1 bra COUNTED;
            ld.global r2, [$input + r1];
            and r2, r2, 15;
            atom.add.shared r3, [r2], 1;
        COUNTED:
            bar.sync;
            setp.ge p2, r0, 16;
            @p2 ret;
            ld.shared r4, [r0];
            atom.add.global r5, [$hist + r0], r4;
            ret;
        }
        "#,
    )
    .expect("histogram16 parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_kernel, Launch};

    #[test]
    fn saxpy_reference() {
        let k = saxpy();
        let mut mem = vec![0u64; 20];
        for i in 0..10 {
            mem[i] = i as u64;
            mem[10 + i] = 1;
        }
        run_kernel(&k, &Launch::linear(3, 4, vec![2, 0, 10, 10]), &mut mem).expect("runs");
        let ys: Vec<u64> = (0..10).map(|i| 2 * i + 1).collect();
        assert_eq!(&mem[10..], &ys[..]);
    }

    #[test]
    fn block_reduce_sums() {
        let k = block_reduce_sum();
        let mut mem = vec![0u64; 33];
        for (i, slot) in mem.iter_mut().enumerate().take(30) {
            *slot = i as u64 + 1;
        }
        // input at 0..32 (n=30), out at 32; 4 blocks of 8 threads.
        run_kernel(&k, &Launch::linear(4, 8, vec![0, 32, 30]), &mut mem).expect("runs");
        assert_eq!(mem[32], (1..=30).sum::<u64>());
    }

    #[test]
    fn histogram_counts() {
        let k = histogram16();
        let mut mem = vec![0u64; 80];
        for (i, slot) in mem.iter_mut().enumerate().take(64) {
            *slot = i as u64; // 4 of each bin value 0..15
        }
        run_kernel(&k, &Launch::linear(2, 32, vec![0, 64, 64]), &mut mem).expect("runs");
        assert_eq!(&mem[64..80], &[4u64; 16]);
    }

    #[test]
    fn grid2d_tags() {
        let k = grid2d_tag();
        let mut mem = vec![0u64; 12];
        let launch = Launch {
            grid: (3, 2, 1),
            block: (2, 1, 1),
            params: vec![0],
        };
        run_kernel(&k, &launch, &mut mem).expect("runs");
        assert_eq!(mem[0], 0); // block (0,0) thread 0
        assert_eq!(mem[5], 2001); // block (2,0) thread 1: 2*1000 + 0 + 1
        assert_eq!(mem[6], 1); // block (0,1) thread 0
    }
}
