//! A functional interpreter for the mini-PTX IR.
//!
//! The interpreter exists to *prove* that Tally's kernel transformations
//! preserve semantics: tests execute an original kernel and its
//! sliced/preemptible forms and compare the resulting global memory
//! bit-for-bit.
//!
//! # Execution model
//!
//! Threads within a block run cooperatively: a thread executes until it hits
//! a barrier (`bar` / `bar.or.pred`), exits (`ret`), or the step budget runs
//! out. A barrier releases once **every** thread of the block is waiting at
//! a barrier; if some threads have exited while others wait, the interpreter
//! reports [`InterpError::BarrierDivergence`] — the "infinite kernel stall"
//! the paper's unified synchronization transformation exists to prevent.
//!
//! Blocks can be executed to completion in order ([`run_kernel`]) or
//! interleaved manually in arbitrary schedules ([`GridExec::step_block`]),
//! which is how the tests exercise preemption of persistent-thread-block
//! kernels mid-flight: flip the preemption flag in global memory between
//! steps, observe workers drain, then relaunch and check equivalence.

use std::fmt;

use crate::ir::{Axis, BinOp, CmpOp, Instr, Kernel, Op, Operand, Space, Sreg};

/// Launch geometry and arguments for one kernel execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Launch {
    /// Grid dimensions `(x, y, z)` — number of blocks.
    pub grid: (u32, u32, u32),
    /// Block dimensions `(x, y, z)` — threads per block.
    pub block: (u32, u32, u32),
    /// Positional arguments matching [`Kernel::params`].
    pub params: Vec<u64>,
}

impl Launch {
    /// A 1-D launch.
    pub fn linear(grid: u32, block: u32, params: Vec<u64>) -> Self {
        Launch {
            grid: (grid, 1, 1),
            block: (block, 1, 1),
            params,
        }
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u64 {
        self.block.0 as u64 * self.block.1 as u64 * self.block.2 as u64
    }
}

/// Errors raised during interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The kernel failed structural validation.
    Invalid(crate::ir::ValidateError),
    /// The number of launch arguments does not match the kernel's parameters.
    ParamCountMismatch {
        /// Parameters the kernel declares.
        expected: usize,
        /// Arguments the launch supplied.
        got: usize,
    },
    /// A load/store touched memory outside the allocated range.
    OobAccess {
        /// Which memory space.
        space: Space,
        /// The faulting word address.
        addr: u64,
    },
    /// Some threads of a block exited while others wait at a barrier —
    /// undefined behaviour on real GPUs (a hang), reported as an error here.
    BarrierDivergence {
        /// Linear index of the faulting block.
        block: u64,
    },
    /// A `brx` index evaluated outside its target table.
    BrxOutOfRange {
        /// The evaluated index.
        idx: u64,
        /// The table length.
        table_len: usize,
    },
    /// The global step budget was exhausted (likely an infinite loop).
    StepLimit,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Invalid(e) => write!(f, "invalid kernel: {e}"),
            InterpError::ParamCountMismatch { expected, got } => {
                write!(f, "expected {expected} launch arguments, got {got}")
            }
            InterpError::OobAccess { space, addr } => {
                write!(f, "out-of-bounds {space:?} access at word {addr}")
            }
            InterpError::BarrierDivergence { block } => {
                write!(
                    f,
                    "barrier divergence in block {block}: exited threads while others sync"
                )
            }
            InterpError::BrxOutOfRange { idx, table_len } => {
                write!(
                    f,
                    "brx index {idx} outside target table of length {table_len}"
                )
            }
            InterpError::StepLimit => f.write_str("instruction budget exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<crate::ir::ValidateError> for InterpError {
    fn from(e: crate::ir::ValidateError) -> Self {
        InterpError::Invalid(e)
    }
}

/// Execution statistics of a completed run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Dynamic instructions executed (across all threads).
    pub instructions: u64,
    /// Barrier releases.
    pub barriers: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadStatus {
    Ready,
    /// Waiting at a barrier; `or` carries the `bar.or.pred` payload.
    AtBar {
        or: Option<(crate::ir::Pred, bool)>,
    },
    Done,
}

#[derive(Clone, Debug)]
struct ThreadCtx {
    coords: (u32, u32, u32),
    regs: Vec<u64>,
    preds: Vec<bool>,
    pc: usize,
    status: ThreadStatus,
    /// Destination predicate of a pending `bar.or.pred`, written with the
    /// block-wide OR when the barrier releases.
    pending_or_dst: Option<u16>,
}

/// Progress state of one block.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BlockState {
    /// The block still has runnable work.
    InProgress,
    /// Every thread of the block has exited.
    Done,
}

/// Resumable execution state of one thread block.
#[derive(Clone, Debug)]
pub struct BlockExec {
    coords: (u32, u32, u32),
    threads: Vec<ThreadCtx>,
    shared: Vec<u64>,
    done: bool,
}

/// Resumable execution of a full grid, block by block.
///
/// Blocks are created lazily-equivalent (all up front, they are small) and
/// can be advanced in any interleaving via [`GridExec::step_block`] —
/// thread blocks of a kernel are independent, so any schedule must produce
/// the same result, and the test suite checks exactly that.
#[derive(Debug)]
pub struct GridExec<'k> {
    kernel: &'k Kernel,
    labels: Vec<usize>,
    launch: Launch,
    blocks: Vec<BlockExec>,
    stats: InterpStats,
}

impl<'k> GridExec<'k> {
    /// Prepares an execution of `kernel` under `launch`.
    ///
    /// # Errors
    ///
    /// Fails if the kernel does not validate or the launch arguments do not
    /// match the declared parameters.
    pub fn new(kernel: &'k Kernel, launch: Launch) -> Result<Self, InterpError> {
        kernel.validate()?;
        if launch.params.len() != kernel.params.len() {
            return Err(InterpError::ParamCountMismatch {
                expected: kernel.params.len(),
                got: launch.params.len(),
            });
        }
        let labels = kernel.resolve_labels()?;
        let mut blocks = Vec::with_capacity(launch.num_blocks() as usize);
        for bz in 0..launch.grid.2 {
            for by in 0..launch.grid.1 {
                for bx in 0..launch.grid.0 {
                    blocks.push(BlockExec::new(kernel, &launch, (bx, by, bz)));
                }
            }
        }
        Ok(GridExec {
            kernel,
            labels,
            launch,
            blocks,
            stats: InterpStats::default(),
        })
    }

    /// Number of blocks in the launch.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the given block has finished.
    pub fn block_done(&self, block: usize) -> bool {
        self.blocks[block].done
    }

    /// Whether every block has finished.
    pub fn all_done(&self) -> bool {
        self.blocks.iter().all(|b| b.done)
    }

    /// Statistics so far.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// Advances one block by at most `budget` dynamic instructions.
    ///
    /// # Errors
    ///
    /// Propagates any [`InterpError`] raised by the block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn step_block(
        &mut self,
        block: usize,
        budget: u64,
        global: &mut [u64],
    ) -> Result<BlockState, InterpError> {
        let b = &mut self.blocks[block];
        if b.done {
            return Ok(BlockState::Done);
        }
        let state = b.advance(
            self.kernel,
            &self.labels,
            &self.launch,
            global,
            budget,
            &mut self.stats,
        )?;
        Ok(state)
    }

    /// Runs every block to completion, in block order, with a global step
    /// budget.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors; returns [`InterpError::StepLimit`] if
    /// the budget is exhausted.
    pub fn run(&mut self, global: &mut [u64], max_steps: u64) -> Result<(), InterpError> {
        let mut remaining = max_steps;
        for i in 0..self.blocks.len() {
            loop {
                if remaining == 0 {
                    return Err(InterpError::StepLimit);
                }
                let quantum = remaining.min(100_000);
                let before = self.stats.instructions;
                let state = self.step_block(i, quantum, global)?;
                let used = self.stats.instructions - before;
                remaining = remaining.saturating_sub(used.max(1));
                if state == BlockState::Done {
                    break;
                }
            }
        }
        Ok(())
    }
}

/// Validates and runs `kernel` under `launch` against `global` memory,
/// blocks in order, with a generous default step budget.
///
/// # Errors
///
/// See [`InterpError`].
///
/// ```
/// use tally_ptx::{parse_kernel, interp::{run_kernel, Launch}};
///
/// let k = parse_kernel(r#"
///     .entry scale(.param n, .param out) {
///         mov r0, %ctaid.x; mad r1, r0, %ntid.x, %tid.x;
///         setp.ge p0, r1, $n; @p0 ret;
///         bin.mul r2, r1, 3;
///         st.global [$out + r1], r2;
///         ret;
///     }"#).unwrap();
/// let mut mem = vec![0u64; 8];
/// run_kernel(&k, &Launch::linear(2, 4, vec![8, 0]), &mut mem).unwrap();
/// assert_eq!(mem, vec![0, 3, 6, 9, 12, 15, 18, 21]);
/// ```
pub fn run_kernel(
    kernel: &Kernel,
    launch: &Launch,
    global: &mut [u64],
) -> Result<InterpStats, InterpError> {
    let mut exec = GridExec::new(kernel, launch.clone())?;
    exec.run(global, 500_000_000)?;
    Ok(exec.stats())
}

impl BlockExec {
    fn new(kernel: &Kernel, launch: &Launch, coords: (u32, u32, u32)) -> Self {
        let mut threads = Vec::with_capacity(launch.threads_per_block() as usize);
        for tz in 0..launch.block.2 {
            for ty in 0..launch.block.1 {
                for tx in 0..launch.block.0 {
                    threads.push(ThreadCtx {
                        coords: (tx, ty, tz),
                        regs: vec![0; kernel.num_regs as usize],
                        preds: vec![false; kernel.num_preds as usize],
                        pc: 0,
                        status: ThreadStatus::Ready,
                        pending_or_dst: None,
                    });
                }
            }
        }
        BlockExec {
            coords,
            threads,
            shared: vec![0; kernel.shared_words as usize],
            done: false,
        }
    }

    fn linear_index(&self, launch: &Launch) -> u64 {
        self.coords.0 as u64
            + launch.grid.0 as u64
                * (self.coords.1 as u64 + launch.grid.1 as u64 * self.coords.2 as u64)
    }

    fn advance(
        &mut self,
        kernel: &Kernel,
        labels: &[usize],
        launch: &Launch,
        global: &mut [u64],
        budget: u64,
        stats: &mut InterpStats,
    ) -> Result<BlockState, InterpError> {
        let mut budget = budget;
        loop {
            let mut progressed = false;
            for t in 0..self.threads.len() {
                if budget == 0 {
                    return Ok(BlockState::InProgress);
                }
                if self.threads[t].status == ThreadStatus::Ready {
                    progressed = true;
                    self.exec_thread(t, kernel, labels, launch, global, &mut budget, stats)?;
                }
            }
            if !progressed {
                // No runnable threads: all done, or a barrier to release.
                if self.threads.iter().all(|t| t.status == ThreadStatus::Done) {
                    self.done = true;
                    return Ok(BlockState::Done);
                }
                let any_done = self.threads.iter().any(|t| t.status == ThreadStatus::Done);
                if any_done {
                    return Err(InterpError::BarrierDivergence {
                        block: self.linear_index(launch),
                    });
                }
                // Everyone is at a barrier: release it.
                let mut or_val = false;
                for t in &self.threads {
                    if let ThreadStatus::AtBar { or: Some((src, _)) } = t.status {
                        or_val |= t.preds[src.0 as usize];
                    }
                }
                for t in &mut self.threads {
                    t.status = ThreadStatus::Ready;
                    if let Some(d) = t.pending_or_dst.take() {
                        t.preds[d as usize] = or_val;
                    }
                }
                stats.barriers += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_thread(
        &mut self,
        t: usize,
        kernel: &Kernel,
        labels: &[usize],
        launch: &Launch,
        global: &mut [u64],
        budget: &mut u64,
        stats: &mut InterpStats,
    ) -> Result<(), InterpError> {
        loop {
            if *budget == 0 {
                return Ok(());
            }
            let pc = self.threads[t].pc;
            if pc >= kernel.body.len() {
                // Falling off the end behaves like `ret`.
                self.threads[t].status = ThreadStatus::Done;
                return Ok(());
            }
            *budget -= 1;
            stats.instructions += 1;
            let instr: &Instr = &kernel.body[pc];
            if let Some((p, polarity)) = instr.guard {
                if self.threads[t].preds[p.0 as usize] != polarity {
                    self.threads[t].pc += 1;
                    continue;
                }
            }
            match &instr.op {
                Op::Label(_) => {
                    self.threads[t].pc += 1;
                }
                Op::Mov { d, a } => {
                    let v = self.eval(t, *a, launch);
                    self.threads[t].regs[d.0 as usize] = v;
                    self.threads[t].pc += 1;
                }
                Op::Bin { op, d, a, b } => {
                    let av = self.eval(t, *a, launch);
                    let bv = self.eval(t, *b, launch);
                    self.threads[t].regs[d.0 as usize] = eval_bin(*op, av, bv);
                    self.threads[t].pc += 1;
                }
                Op::Mad { d, a, b, c } => {
                    let av = self.eval(t, *a, launch);
                    let bv = self.eval(t, *b, launch);
                    let cv = self.eval(t, *c, launch);
                    self.threads[t].regs[d.0 as usize] = av.wrapping_mul(bv).wrapping_add(cv);
                    self.threads[t].pc += 1;
                }
                Op::SetP { op, d, a, b } => {
                    let av = self.eval(t, *a, launch);
                    let bv = self.eval(t, *b, launch);
                    self.threads[t].preds[d.0 as usize] = eval_cmp(*op, av, bv);
                    self.threads[t].pc += 1;
                }
                Op::NotP { d, a } => {
                    let v = !self.threads[t].preds[a.0 as usize];
                    self.threads[t].preds[d.0 as usize] = v;
                    self.threads[t].pc += 1;
                }
                Op::Ld {
                    space,
                    d,
                    addr,
                    off,
                } => {
                    let base = self.eval(t, *addr, launch);
                    let a = base.wrapping_add(self.eval(t, *off, launch));
                    let v = self.load(*space, a, global)?;
                    self.threads[t].regs[d.0 as usize] = v;
                    self.threads[t].pc += 1;
                }
                Op::St {
                    space,
                    addr,
                    off,
                    a,
                } => {
                    let base = self.eval(t, *addr, launch);
                    let v = self.eval(t, *a, launch);
                    let ad = base.wrapping_add(self.eval(t, *off, launch));
                    self.store(*space, ad, v, global)?;
                    self.threads[t].pc += 1;
                }
                Op::AtomAdd {
                    space,
                    d,
                    addr,
                    off,
                    a,
                } => {
                    let base = self.eval(t, *addr, launch);
                    let v = self.eval(t, *a, launch);
                    let ad = base.wrapping_add(self.eval(t, *off, launch));
                    let old = self.load(*space, ad, global)?;
                    self.store(*space, ad, old.wrapping_add(v), global)?;
                    self.threads[t].regs[d.0 as usize] = old;
                    self.threads[t].pc += 1;
                }
                Op::Bar => {
                    self.threads[t].pc += 1;
                    self.threads[t].status = ThreadStatus::AtBar { or: None };
                    return Ok(());
                }
                Op::BarOrPred { d, a } => {
                    self.threads[t].pc += 1;
                    self.threads[t].pending_or_dst = Some(d.0);
                    self.threads[t].status = ThreadStatus::AtBar {
                        or: Some((*a, true)),
                    };
                    return Ok(());
                }
                Op::Bra { t: tgt } => {
                    self.threads[t].pc = labels[tgt.0 as usize];
                }
                Op::Brx { table, idx } => {
                    let i = self.eval(t, *idx, launch);
                    let Some(l) = table.get(i as usize) else {
                        return Err(InterpError::BrxOutOfRange {
                            idx: i,
                            table_len: table.len(),
                        });
                    };
                    self.threads[t].pc = labels[l.0 as usize];
                }
                Op::Ret => {
                    self.threads[t].status = ThreadStatus::Done;
                    return Ok(());
                }
            }
        }
    }

    fn eval(&self, t: usize, o: Operand, launch: &Launch) -> u64 {
        let th = &self.threads[t];
        match o {
            Operand::Reg(r) => th.regs[r.0 as usize],
            Operand::Imm(v) => v,
            Operand::Param(i) => launch.params[i as usize],
            Operand::Sreg(s) => match s {
                Sreg::Tid(a) => pick(th.coords, a) as u64,
                Sreg::Ntid(a) => pick(launch.block, a) as u64,
                Sreg::Ctaid(a) => pick(self.coords, a) as u64,
                Sreg::Nctaid(a) => pick(launch.grid, a) as u64,
            },
        }
    }

    fn load(&self, space: Space, addr: u64, global: &[u64]) -> Result<u64, InterpError> {
        let mem: &[u64] = match space {
            Space::Global => global,
            Space::Shared => &self.shared,
        };
        mem.get(addr as usize)
            .copied()
            .ok_or(InterpError::OobAccess { space, addr })
    }

    fn store(
        &mut self,
        space: Space,
        addr: u64,
        v: u64,
        global: &mut [u64],
    ) -> Result<(), InterpError> {
        let mem: &mut [u64] = match space {
            Space::Global => global,
            Space::Shared => &mut self.shared,
        };
        match mem.get_mut(addr as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(InterpError::OobAccess { space, addr }),
        }
    }
}

fn pick(v: (u32, u32, u32), a: Axis) -> u32 {
    match a {
        Axis::X => v.0,
        Axis::Y => v.1,
        Axis::Z => v.2,
    }
}

fn eval_bin(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
        BinOp::Rem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 % 64),
        BinOp::Shr => a.wrapping_shr(b as u32 % 64),
    }
}

fn eval_cmp(op: CmpOp, a: u64, b: u64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Op, Operand};

    fn simple_store_kernel() -> Kernel {
        // out[ctaid.x * ntid.x + tid.x] = ctaid.x * 100 + tid.x
        let mut k = Kernel::new("store");
        let out = k.add_param("out");
        let r0 = k.fresh_reg();
        let r1 = k.fresh_reg();
        k.push(Op::Mad {
            d: r0,
            a: Operand::Sreg(Sreg::Ctaid(Axis::X)),
            b: Operand::Sreg(Sreg::Ntid(Axis::X)),
            c: Operand::Sreg(Sreg::Tid(Axis::X)),
        });
        k.push(Op::Mad {
            d: r1,
            a: Operand::Sreg(Sreg::Ctaid(Axis::X)),
            b: Operand::Imm(100),
            c: Operand::Sreg(Sreg::Tid(Axis::X)),
        });
        k.push(Op::Bin {
            op: BinOp::Add,
            d: r0,
            a: r0.into(),
            b: out,
        });
        k.push(Op::St {
            space: Space::Global,
            addr: r0.into(),
            off: Operand::Imm(0),
            a: r1.into(),
        });
        k.push(Op::Ret);
        k
    }

    #[test]
    fn stores_land_per_thread() {
        let k = simple_store_kernel();
        let mut mem = vec![0u64; 8];
        let stats = run_kernel(&k, &Launch::linear(2, 4, vec![0]), &mut mem).expect("runs");
        assert_eq!(mem, vec![0, 1, 2, 3, 100, 101, 102, 103]);
        assert!(stats.instructions > 0);
    }

    #[test]
    fn param_count_checked() {
        let k = simple_store_kernel();
        let mut mem = vec![0u64; 8];
        let err = run_kernel(&k, &Launch::linear(1, 1, vec![]), &mut mem).unwrap_err();
        assert_eq!(
            err,
            InterpError::ParamCountMismatch {
                expected: 1,
                got: 0
            }
        );
    }

    #[test]
    fn oob_store_detected() {
        let k = simple_store_kernel();
        let mut mem = vec![0u64; 2];
        let err = run_kernel(&k, &Launch::linear(2, 4, vec![0]), &mut mem).unwrap_err();
        assert!(matches!(
            err,
            InterpError::OobAccess {
                space: Space::Global,
                ..
            }
        ));
    }

    #[test]
    fn barrier_synchronizes_shared_memory() {
        // Threads write shared[tid], sync, then read shared[ntid-1-tid]
        // (a reversal — wrong without the barrier).
        let mut k = Kernel::new("reverse");
        let out = k.add_param("out");
        let r_tid = k.fresh_reg();
        let r_rev = k.fresh_reg();
        let r_val = k.fresh_reg();
        let r_addr = k.fresh_reg();
        k.push(Op::Mov {
            d: r_tid,
            a: Operand::Sreg(Sreg::Tid(Axis::X)),
        });
        k.push(Op::St {
            space: Space::Shared,
            addr: r_tid.into(),
            off: Operand::Imm(0),
            a: r_tid.into(),
        });
        k.push(Op::Bar);
        k.push(Op::Bin {
            op: BinOp::Sub,
            d: r_rev,
            a: Operand::Sreg(Sreg::Ntid(Axis::X)),
            b: r_tid.into(),
        });
        k.push(Op::Bin {
            op: BinOp::Sub,
            d: r_rev,
            a: r_rev.into(),
            b: Operand::Imm(1),
        });
        k.push(Op::Ld {
            space: Space::Shared,
            d: r_val,
            addr: r_rev.into(),
            off: Operand::Imm(0),
        });
        k.push(Op::Bin {
            op: BinOp::Add,
            d: r_addr,
            a: r_tid.into(),
            b: out,
        });
        k.push(Op::St {
            space: Space::Global,
            addr: r_addr.into(),
            off: Operand::Imm(0),
            a: r_val.into(),
        });
        k.push(Op::Ret);
        k.shared_words = 4;
        let mut mem = vec![0u64; 4];
        run_kernel(&k, &Launch::linear(1, 4, vec![0]), &mut mem).expect("runs");
        assert_eq!(mem, vec![3, 2, 1, 0]);
    }

    #[test]
    fn divergent_barrier_is_detected() {
        // Thread 0 returns early; the rest hit a barrier => divergence.
        let mut k = Kernel::new("divergent");
        let p = k.fresh_pred();
        k.push(Op::SetP {
            op: CmpOp::Eq,
            d: p,
            a: Operand::Sreg(Sreg::Tid(Axis::X)),
            b: Operand::Imm(0),
        });
        k.push_guarded(p, true, Op::Ret);
        k.push(Op::Bar);
        k.push(Op::Ret);
        let mut mem = vec![0u64; 1];
        let err = run_kernel(&k, &Launch::linear(1, 4, vec![]), &mut mem).unwrap_err();
        assert_eq!(err, InterpError::BarrierDivergence { block: 0 });
    }

    #[test]
    fn bar_or_pred_reduces_across_threads() {
        // p = (tid == 2); bar.or.pred q, p; out[tid] = q ? 1 : 0.
        let mut k = Kernel::new("orpred");
        let out = k.add_param("out");
        let p = k.fresh_pred();
        let q = k.fresh_pred();
        let r = k.fresh_reg();
        let r_addr = k.fresh_reg();
        k.push(Op::SetP {
            op: CmpOp::Eq,
            d: p,
            a: Operand::Sreg(Sreg::Tid(Axis::X)),
            b: Operand::Imm(2),
        });
        k.push(Op::BarOrPred { d: q, a: p });
        k.push(Op::Mov {
            d: r,
            a: Operand::Imm(0),
        });
        k.push_guarded(
            q,
            true,
            Op::Mov {
                d: r,
                a: Operand::Imm(1),
            },
        );
        k.push(Op::Bin {
            op: BinOp::Add,
            d: r_addr,
            a: Operand::Sreg(Sreg::Tid(Axis::X)),
            b: out,
        });
        k.push(Op::St {
            space: Space::Global,
            addr: r_addr.into(),
            off: Operand::Imm(0),
            a: r.into(),
        });
        k.push(Op::Ret);
        let mut mem = vec![0u64; 4];
        run_kernel(&k, &Launch::linear(1, 4, vec![0]), &mut mem).expect("runs");
        assert_eq!(mem, vec![1, 1, 1, 1], "OR result must reach every thread");
    }

    #[test]
    fn atomics_accumulate_across_blocks() {
        let mut k = Kernel::new("count");
        let ctr = k.add_param("ctr");
        let r = k.fresh_reg();
        k.push(Op::AtomAdd {
            space: Space::Global,
            d: r,
            addr: ctr,
            off: Operand::Imm(0),
            a: Operand::Imm(1),
        });
        k.push(Op::Ret);
        let mut mem = vec![0u64; 1];
        run_kernel(&k, &Launch::linear(5, 3, vec![0]), &mut mem).expect("runs");
        assert_eq!(mem[0], 15);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut k = Kernel::new("spin");
        let l = k.fresh_label("loop");
        k.push(Op::Label(l));
        k.push(Op::Bra { t: l });
        let mut exec = GridExec::new(&k, Launch::linear(1, 1, vec![])).expect("valid");
        let mut mem = vec![];
        let err = exec.run(&mut mem, 10_000).unwrap_err();
        assert_eq!(err, InterpError::StepLimit);
    }

    #[test]
    fn guard_polarity_respected() {
        let mut k = Kernel::new("guard");
        let out = k.add_param("out");
        let p = k.fresh_pred();
        let r = k.fresh_reg();
        k.push(Op::SetP {
            op: CmpOp::Eq,
            d: p,
            a: Operand::Imm(1),
            b: Operand::Imm(1),
        });
        k.push_guarded(
            p,
            false,
            Op::Mov {
                d: r,
                a: Operand::Imm(99),
            },
        ); // skipped
        k.push_guarded(
            p,
            true,
            Op::Mov {
                d: r,
                a: Operand::Imm(42),
            },
        ); // taken
        k.push(Op::St {
            space: Space::Global,
            addr: out,
            off: Operand::Imm(0),
            a: r.into(),
        });
        k.push(Op::Ret);
        let mut mem = vec![0u64; 1];
        run_kernel(&k, &Launch::linear(1, 1, vec![0]), &mut mem).expect("runs");
        assert_eq!(mem[0], 42);
    }

    #[test]
    fn three_dimensional_coords() {
        // out[linear block index] += 1 for a (2,3,2) grid.
        let mut k = Kernel::new("coords3d");
        let out = k.add_param("out");
        let r = k.fresh_reg();
        let tmp = k.fresh_reg();
        // linear = x + gx*(y + gy*z)
        k.push(Op::Mad {
            d: r,
            a: Operand::Sreg(Sreg::Ctaid(Axis::Z)),
            b: Operand::Sreg(Sreg::Nctaid(Axis::Y)),
            c: Operand::Sreg(Sreg::Ctaid(Axis::Y)),
        });
        k.push(Op::Mad {
            d: r,
            a: r.into(),
            b: Operand::Sreg(Sreg::Nctaid(Axis::X)),
            c: Operand::Sreg(Sreg::Ctaid(Axis::X)),
        });
        k.push(Op::Bin {
            op: BinOp::Add,
            d: tmp,
            a: r.into(),
            b: out,
        });
        k.push(Op::St {
            space: Space::Global,
            addr: tmp.into(),
            off: Operand::Imm(0),
            a: r.into(),
        });
        k.push(Op::Ret);
        let mut mem = vec![0u64; 12];
        let launch = Launch {
            grid: (2, 3, 2),
            block: (1, 1, 1),
            params: vec![0],
        };
        run_kernel(&k, &launch, &mut mem).expect("runs");
        assert_eq!(mem, (0..12).collect::<Vec<u64>>());
    }
}
