//! Recording a live run and replaying it: the event-stream observer API
//! end to end.
//!
//! A two-GPU fleet serves a churny, trace-driven workload under the
//! `LoadAware` placement policy (which reads the live `DeviceLoad`
//! signals distilled from the same event stream). While the fleet runs,
//! two observers ride along:
//!
//! * a [`TraceRecorder`] captures every client lifecycle edge, producing
//!   an `ArrivalTrace` that — serialized to text, parsed back, and
//!   replayed — reproduces the whole fleet report byte for byte;
//! * a tiny custom [`SessionObserver`] tallies the raw event volume, the
//!   kind of instrumentation the typed stream makes one-liners.
//!
//! Run with: `cargo run --release --example record_replay`

use std::cell::RefCell;
use std::rc::Rc;

use tally::prelude::*;
use tally_workloads::trace::TraceRecorder;

/// Counts observations by kind — a minimal custom observer.
#[derive(Default)]
struct EventTally {
    attaches: u64,
    detaches: u64,
    kernels: u64,
    requests: u64,
    migrations: u64,
}

impl SessionObserver for EventTally {
    fn on_event(&mut self, _at: SimTime, _device: usize, event: &Observation) {
        match event {
            Observation::ClientAttached { .. } => self.attaches += 1,
            Observation::ClientDetached { .. } => self.detaches += 1,
            Observation::KernelFinished { .. } => self.kernels += 1,
            Observation::RequestCompleted { .. } => self.requests += 1,
            Observation::ClientMigrated { .. } => self.migrations += 1,
            _ => {}
        }
    }
}

fn main() {
    let spec = GpuSpec::a100();
    let duration = SimSpan::from_secs(8);
    let cfg = HarnessConfig {
        duration,
        warmup: SimSpan::ZERO,
        seed: 11,
        jitter: 0.0,
        record_timelines: false,
    };

    // A seeded churn trace drives the fleet: trainers and services that
    // arrive, depart, and re-attach over the run.
    let source = ArrivalTrace::generate(&TraceGen::churn(duration, 1.0, 77));
    println!(
        "source trace: {} events over {} clients",
        source.len(),
        source.keys().count()
    );

    let run = |trace: &ArrivalTrace,
               recorder: Option<Rc<RefCell<TraceRecorder>>>,
               tally: Option<Rc<RefCell<EventTally>>>| {
        let mut cluster = Cluster::new()
            .devices(2, spec.clone())
            .policy(LoadAware::default())
            .rebalance_every(SimSpan::from_millis(250))
            .trace(trace.session_events(&spec, duration))
            .expect("valid trace")
            .config(cfg.clone());
        if let Some(rec) = recorder {
            cluster = cluster.observer(rec);
        }
        if let Some(t) = tally {
            cluster = cluster.observer(t);
        }
        cluster.run()
    };

    // 1. The live run, observed.
    let recorder = TraceRecorder::shared();
    let tally = Rc::new(RefCell::new(EventTally::default()));
    let live = run(&source, Some(recorder.clone()), Some(tally.clone()));
    {
        let t = tally.borrow();
        println!("\n=== live run ({} policy) ===", live.policy);
        println!(
            "observed: {} attaches, {} detaches, {} kernels, {} requests, {} migrations",
            t.attaches, t.detaches, t.kernels, t.requests, t.migrations
        );
    }
    for d in &live.devices {
        println!(
            "device {}: {} placed, {} resident at end, throughput {:.2}",
            d.device, d.placed, d.residents, d.throughput
        );
    }

    // 2. The capture, serialized exactly as you would check it in.
    let captured = recorder.borrow().trace().expect("recordable run");
    let text = captured.to_text();
    println!("\n=== captured trace ({} events) ===", captured.len());
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    println!(
        "  ... ({} more lines)",
        text.lines().count().saturating_sub(8)
    );

    // 3. Parse the text back and replay the fleet: byte-identical report.
    let reloaded = ArrivalTrace::parse(&text).expect("canonical text parses");
    let replay = run(&reloaded, None, None);
    assert_eq!(
        format!("{live:?}"),
        format!("{replay:?}"),
        "replaying the recorded text diverged from the live run"
    );
    println!(
        "\nreplay of the captured text reproduces the live fleet report byte-identically \
         ({} clients, {} migrations, fleet p99 {:?})",
        replay.clients.len(),
        replay.migrations,
        replay.fleet_p99()
    );
}
