//! Multi-GPU quickstart: place clients across a two-GPU fleet with a
//! demand-aware policy, let a service retire mid-run, and watch the
//! cluster migrate a best-effort trainer onto the freed device.
//!
//! ```sh
//! cargo run --release --example cluster
//! ```

use tally::prelude::*;
use tally::workloads::mixes;

fn main() {
    let spec = GpuSpec::a100();
    let cfg = HarnessConfig {
        duration: SimSpan::from_secs(10),
        warmup: SimSpan::from_secs(1),
        seed: 42,
        jitter: 0.0,
        record_timelines: false,
    };

    // A BERT service that retires at t=5s, plus four GPT2-Large trainers.
    let mut jobs = mixes::standard(&spec, 0.5, cfg.duration);
    jobs.truncate(1);
    jobs[0] = jobs[0].clone().active_until(SimTime::from_secs(5));
    for i in 0..4 {
        let mut trainer = mixes::standard(&spec, 0.5, cfg.duration).remove(1);
        trainer.client_key = Some(format!("trainer-{i}"));
        jobs.push(trainer);
    }

    // BestEffortPacking keeps the trainers off the service's device; when
    // the service retires, detach-triggered migration reuses the freed GPU.
    let report = Cluster::new()
        .devices(2, spec)
        .clients(jobs)
        .policy(BestEffortPacking)
        .systems_with(|_| Box::new(TallySystem::new(TallyConfig::paper_default())))
        .transport(Transport::SharedMemory)
        .config(cfg)
        .run();

    println!(
        "policy {}   migrations {}   fleet p99 {:?}\n",
        report.policy,
        report.migrations,
        report.fleet_p99()
    );
    println!(
        "{:<10}{:<10}{:>8}{:>8}{:>12}{:>14}",
        "device", "system", "placed", "final", "mig in/out", "throughput"
    );
    for d in &report.devices {
        println!(
            "{:<10}{:<10}{:>8}{:>8}{:>9}/{:<4}{:>10.2}",
            d.device,
            d.system,
            d.placed,
            d.residents,
            d.migrations_in,
            d.migrations_out,
            d.throughput
        );
    }
    println!();
    println!(
        "{:<24}{:>8}{:>8}{:>6}{:>12}{:>12}",
        "client", "placed", "final", "migs", "iters", "requests"
    );
    for c in &report.clients {
        println!(
            "{:<24}{:>8}{:>8}{:>6}{:>12}{:>12}",
            c.key, c.initial_device, c.device, c.migrations, c.report.iterations, c.report.requests
        );
    }
}
