//! Driving a session from an arrival trace: generate → save → replay.
//!
//! Instead of hand-placing activity windows, a seeded MAF2-flavored
//! generator produces a client arrival/departure trace (trainers that come,
//! go, and *re-attach*, plus a long-lived BERT service). The trace is
//! serialized to plain text (the form you would check into a repo),
//! parsed back, and replayed byte-identically through a Tally session —
//! then the same events drive a two-GPU `Cluster`, where each client is
//! placed at its arrival instant against the fleet's live load.
//!
//! Run with: `cargo run --release --example trace_driven`

use tally::prelude::*;
use tally_workloads::trace::TraceMix;

fn main() {
    let spec = GpuSpec::a100();
    let duration = SimSpan::from_secs(12);
    let cfg = HarnessConfig {
        duration,
        warmup: SimSpan::ZERO,
        seed: 3,
        jitter: 0.0,
        record_timelines: false,
    };

    // 1. Generate: ~1 trainer arrival/second, exponential stays, frequent
    //    re-arrivals; plus an always-on BERT service added by hand.
    let mut gen = TraceGen::churn(duration, 1.0, 42);
    gen.mix.retain(|m| matches!(m.job, TraceJob::Train(_)));
    gen.mix.push(TraceMix {
        job: TraceJob::Train(TrainModel::Pegasus),
        weight: 0.2,
        mean_service: SimSpan::from_secs(3),
        rearrive: 0.5,
        mean_gap: SimSpan::from_secs(1),
    });
    let mut trace = ArrivalTrace::generate(&gen);
    trace.events.insert(
        0,
        tally_workloads::trace::TraceEvent {
            at: SimTime::ZERO,
            event: ClientEvent::Arrive {
                key: "svc".into(),
                job: TraceJob::Infer {
                    model: InferModel::Bert,
                    load: 0.4,
                    seed: 7,
                },
            },
        },
    );
    trace.validate().expect("valid trace");

    // 2. Save / reload: the plain-text form round-trips byte-identically.
    let text = trace.to_text();
    println!("=== generated trace ({} events) ===", trace.len());
    for line in text.lines().take(12) {
        println!("  {line}");
    }
    println!(
        "  ... ({} more lines)\n",
        text.lines().count().saturating_sub(12)
    );
    let reloaded = ArrivalTrace::parse(&text).expect("canonical text parses");
    assert_eq!(reloaded, trace);

    // 3. Replay under Tally on one GPU.
    let mut tally = TallySystem::new(TallyConfig::paper_default());
    let report = Colocation::on(spec.clone())
        .trace(reloaded.session_events(&spec, duration))
        .expect("valid trace")
        .system(&mut tally)
        .config(cfg.clone())
        .transport(Transport::SharedMemory)
        .run();
    println!("=== single-GPU replay under Tally ===");
    let svc = report.high_priority().expect("service");
    println!(
        "service: {} requests, p99 {:?}",
        svc.requests,
        svc.p99().expect("latencies")
    );
    for c in report.best_effort() {
        println!(
            "  {:<22} attaches {:>2}  iterations {:>4}",
            c.name, c.attachments, c.iterations
        );
    }

    // 4. The same trace drives a fleet: clients are placed at their
    //    arrival instants against live per-device loads.
    let cluster = Cluster::new()
        .devices(2, spec.clone())
        .policy(LeastLoaded)
        .trace(reloaded.session_events(&spec, duration))
        .expect("valid trace")
        .config(cfg)
        .run();
    println!("\n=== two-GPU fleet replay ({}) ===", cluster.policy);
    for d in &cluster.devices {
        println!(
            "device {}: {} resident at end, {} placed, throughput {:.2}",
            d.device, d.residents, d.placed, d.throughput
        );
    }
    println!(
        "fleet: {} clients, {} migrations, p99 {:?}",
        cluster.clients.len(),
        cluster.migrations,
        cluster.fleet_p99()
    );
}
