//! Dynamic client lifecycle: trainers attach to and detach from a live
//! Tally session while a latency-critical service runs throughout — the
//! long-lived-server deployment shape of the real system.
//!
//! A BERT inference service is up for the whole 16 s run; a Whisper
//! trainer joins at 4 s and leaves at 10 s; a GPT2 trainer joins at 7 s
//! and stays. Tally must absorb both arrivals and reclaim the departed
//! client's state without disturbing the service's tail latency.
//!
//! Run with: `cargo run --release --example client_churn`

use tally::prelude::*;

fn main() {
    let spec = GpuSpec::a100();
    let duration = SimSpan::from_secs(16);
    let cfg = HarnessConfig {
        duration,
        warmup: SimSpan::ZERO,
        seed: 21,
        jitter: 0.0,
        record_timelines: true,
    };

    let trace = arrivals(&Maf2Config::new(
        0.5,
        InferModel::Bert.paper_latency(),
        duration,
    ));
    let service = InferModel::Bert.job(&spec, trace);
    let whisper = TrainModel::WhisperV3
        .job(&spec)
        .active_window(SimTime::from_secs(4), SimTime::from_secs(10));
    let gpt2 = TrainModel::Gpt2Large
        .job(&spec)
        .active_from(SimTime::from_secs(7));

    println!("timeline: bert-infer runs 0-16s; whisper trains 4-10s; gpt2 trains from 7s\n");

    let mut tally = TallySystem::new(TallyConfig::paper_default());
    let report = Colocation::on(spec.clone())
        .client(service)
        .client(whisper)
        .client(gpt2)
        .system(&mut tally)
        .config(cfg)
        .transport(Transport::SharedMemory)
        .run();

    let hp = report.high_priority().expect("service");
    println!("windowed p99 of the service (2s windows):");
    let window = SimSpan::from_secs(2);
    for w in 0..8u64 {
        let lo = SimTime::ZERO + window * w;
        let hi = lo + window;
        let p99 = hp.windowed(lo, hi).p99();
        // Label by the window start against the timeline edges above.
        let phase = if lo < SimTime::from_secs(4) {
            "service alone"
        } else if lo < SimTime::from_secs(7) {
            "+ whisper"
        } else if lo < SimTime::from_secs(10) {
            "+ whisper + gpt2"
        } else {
            "+ gpt2 (whisper gone)"
        };
        match p99 {
            Some(p) => println!(
                "  [{:>2}-{:>2}s] p99 {:>10}   {phase}",
                w * 2,
                w * 2 + 2,
                format!("{p}")
            ),
            None => println!(
                "  [{:>2}-{:>2}s] p99          -   {phase}",
                w * 2,
                w * 2 + 2
            ),
        }
    }

    println!("\nper-client outcome:");
    for c in &report.clients {
        println!(
            "  {:<18} kernels {:>8}  iterations {:>5}  requests {:>5}  ({:.0}% of API calls local)",
            c.name,
            c.kernels,
            c.iterations,
            c.requests,
            c.intercept.local_fraction() * 100.0
        );
    }
    println!(
        "\nbest-effort preemptions issued by Tally: {}",
        tally.preemptions()
    );
    println!("The service's p99 should stay in the same range through every phase.");
}
