//! Quickstart: co-locate a latency-critical BERT inference service with a
//! best-effort Whisper training job under Tally, and compare the service's
//! tail latency against solo ("Ideal") execution.
//!
//! Run with: `cargo run --release --example quickstart`

use tally::prelude::*;

fn main() {
    let spec = GpuSpec::a100();
    let duration = SimSpan::from_secs(15);
    let cfg = HarnessConfig {
        duration,
        warmup: SimSpan::from_secs(2),
        seed: 1,
        jitter: 0.0,
        record_timelines: false,
    };

    // The high-priority side: BERT inference (3.93 ms solo latency),
    // driven by a bursty MAF2-style trace at 50% load.
    let trace = arrivals(&Maf2Config::new(
        0.5,
        InferModel::Bert.paper_latency(),
        duration,
    ));
    println!("trace: {} requests over {duration}", trace.len());
    let service = InferModel::Bert.job(&spec, trace);

    // The best-effort side: Whisper-v3 training — the paper's hardest
    // trainer, with kernels that run longer than an entire BERT inference.
    let trainer = TrainModel::WhisperV3.job(&spec);

    // Ideal: each job alone on the GPU.
    let solo_service = run_solo(&spec, &service, &cfg);
    let solo_trainer = run_solo(&spec, &trainer, &cfg);

    // Shared execution under Tally, with both clients behind the §4.3
    // interception stubs (shared-memory transport, as deployed).
    let mut tally = TallySystem::new(TallyConfig::paper_default());
    let shared = Colocation::on(spec.clone())
        .client(service)
        .client(trainer)
        .system(&mut tally)
        .config(cfg.clone())
        .transport(Transport::SharedMemory)
        .run();
    let hp = shared.high_priority().expect("inference client");
    let be = shared.best_effort().next().expect("training client");

    let ideal_p99 = solo_service.p99().expect("solo latencies");
    let tally_p99 = hp.p99().expect("shared latencies");
    println!("\n--- BERT inference (high-priority) ---");
    println!("requests served : {}", hp.requests);
    println!("p99 ideal       : {ideal_p99}");
    println!("p99 under Tally : {tally_p99}");
    println!(
        "p99 overhead    : {:+.1}%",
        (tally_p99.ratio(ideal_p99) - 1.0) * 100.0
    );

    println!("\n--- Whisper training (best-effort) ---");
    println!("solo throughput   : {:.3} it/s", solo_trainer.throughput);
    println!("shared throughput : {:.3} it/s", be.throughput);
    println!(
        "retained          : {:.0}% while the service ran at 50% load",
        100.0 * be.throughput / solo_trainer.throughput
    );

    println!("\n--- Tally internals ---");
    println!("best-effort preemptions : {}", tally.preemptions());
    println!("profiler                : {:?}", tally.profiler_stats());
    println!("transformer             : {:?}", tally.transform_stats());
    println!(
        "interception (service)  : {} forwarded, {} local ({:.0}% local)",
        hp.intercept.forwarded,
        hp.intercept.served_locally,
        hp.intercept.local_fraction() * 100.0
    );
}
