//! The telemetry subsystem end to end: a flash crowd rendered as a
//! per-device time series, a labeled metrics registry, and a
//! Perfetto-loadable Chrome trace.
//!
//! Two BERT services run near capacity across a two-GPU fleet while two
//! best-effort services take a 5x flash crowd under [`SloGuard`]
//! admission. Three telemetry observers ride the event stream as *sync*
//! observers — exercising the direct worker-thread delivery path — and
//! because all their state is partitioned per device, every export is
//! byte-identical for every worker-thread count (asserted below for
//! threads 1, 2, and 4).
//!
//! The exports land in `target/telemetry/`:
//!
//! * `timeline.json` / `timeline.csv` — per-device QPS / shed-rate /
//!   occupancy / queue-depth series at a 250 ms cadence, in which the
//!   flash crowd is visible as an arrival surge followed by a shed wave;
//! * `trace.json` — a Chrome trace-event timeline (one track per device,
//!   one row per client): open it at <https://ui.perfetto.dev>.
//!
//! Run with: `cargo run --release --example telemetry`

use tally::prelude::*;
use tally_bench::diff::parse_json;

const CADENCE: SimSpan = SimSpan::from_millis(250);
const SPIKE_AT: SimSpan = SimSpan::from_millis(1000);
const SPIKE_LEN: SimSpan = SimSpan::from_millis(1500);

struct Exports {
    timeline_json: String,
    timeline_csv: String,
    trace_json: String,
    registry: String,
    shed: u64,
}

/// One fleet run with all three telemetry observers attached as sync
/// observers (the thread-parallel delivery path).
fn run(threads: usize) -> Exports {
    let spec = GpuSpec::a100();
    let cfg = HarnessConfig {
        duration: SimSpan::from_secs(4),
        warmup: SimSpan::from_millis(200),
        seed: 11,
        jitter: 0.0,
        record_timelines: false,
    };
    let cap = openloop::solo_capacity_qps(InferModel::Bert);
    let mut jobs = Vec::new();
    for (i, seed) in [31u64, 37].into_iter().enumerate() {
        jobs.push(
            openloop::service(
                &spec,
                InferModel::Bert,
                &LoadProfile::Constant { qps: 0.7 * cap },
                cfg.duration,
                seed,
            )
            .with_client_key(format!("hp-{i}")),
        );
    }
    for (i, seed) in [41u64, 43].into_iter().enumerate() {
        jobs.push(
            openloop::service(
                &spec,
                InferModel::Bert,
                &LoadProfile::FlashCrowd {
                    base_qps: 0.2 * cap,
                    mult: 5.0,
                    at: SPIKE_AT,
                    len: SPIKE_LEN,
                },
                cfg.duration,
                seed,
            )
            .with_priority(Priority::BestEffort)
            .with_client_key(format!("be-{i}")),
        );
    }

    let timeline = Timeline::shared_sync(CADENCE, cfg.duration);
    let trace = ChromeTraceWriter::shared_sync();
    let hub = MetricsHub::shared_sync();
    let report = Cluster::new()
        .devices(2, spec)
        .clients(jobs)
        .rebalance_every(SimSpan::from_millis(250))
        .policy(RoundRobin::default())
        .admission_with(|_| {
            Box::new(
                SloGuard::new(SimSpan::from_millis(20))
                    .window(SimSpan::from_millis(100))
                    .qps_range(2.0, 2000.0),
            )
        })
        .sync_observer(timeline.clone())
        .sync_observer(trace.clone())
        .sync_observer(hub.clone())
        .threads(threads)
        .config(cfg)
        .run();

    let mut timeline = timeline.lock().expect("timeline");
    let hub = hub.lock().expect("hub");
    let trace_json = trace.lock().expect("trace").to_json();
    Exports {
        timeline_json: timeline.to_json(),
        timeline_csv: timeline.to_csv(),
        trace_json,
        registry: format!("{:?}", hub.samples()),
        shed: report.shed(),
    }
}

fn main() {
    println!("Running the flash-crowd fleet with telemetry observers attached...");
    let base = run(1);
    assert!(base.shed > 0, "the flash crowd must trigger shedding");

    // The exports are pure functions of the per-device event streams, so
    // the worker-thread count must not leave a fingerprint in any byte.
    for threads in [2usize, 4] {
        let other = run(threads);
        assert_eq!(
            base.timeline_json, other.timeline_json,
            "timeline JSON diverged at {threads} threads"
        );
        assert_eq!(
            base.timeline_csv, other.timeline_csv,
            "timeline CSV diverged at {threads} threads"
        );
        assert_eq!(
            base.trace_json, other.trace_json,
            "Chrome trace diverged at {threads} threads"
        );
        assert_eq!(
            base.registry, other.registry,
            "metrics registry diverged at {threads} threads"
        );
    }
    println!("Exports byte-identical for threads 1, 2, 4.");

    // Both exports must be well-formed JSON by the bench reader's rules.
    let timeline_doc = parse_json(&base.timeline_json).expect("timeline JSON parses");
    parse_json(&base.trace_json).expect("Chrome trace JSON parses");

    // Walk the parsed timeline and retell the flash-crowd story: arrivals
    // surge once the spike hits, and the SLO guard's shed wave follows.
    use tally_bench::diff::Json;
    let obj = match &timeline_doc {
        Json::Obj(m) => m,
        other => panic!("timeline root must be an object, got {other:?}"),
    };
    assert_eq!(obj.get("version"), Some(&Json::Num(2.0)));
    let series = match obj.get("series") {
        Some(Json::Arr(s)) => s,
        other => panic!("series must be an array, got {other:?}"),
    };
    assert_eq!(series.len(), 2, "one series per device");

    // Aggregate both devices window-by-window.
    let num = |w: &std::collections::BTreeMap<String, Json>, k: &str| -> f64 {
        match w.get(k) {
            Some(Json::Num(v)) => *v,
            other => panic!("window field {k} must be a number, got {other:?}"),
        }
    };
    let mut fleet: Vec<(f64, f64, f64)> = Vec::new(); // (start_ms, requests, shed)
    for dev in series {
        let windows = match dev {
            Json::Obj(d) => match d.get("windows") {
                Some(Json::Arr(w)) => w,
                other => panic!("windows must be an array, got {other:?}"),
            },
            other => panic!("series entry must be an object, got {other:?}"),
        };
        for (i, w) in windows.iter().enumerate() {
            let w = match w {
                Json::Obj(w) => w,
                other => panic!("window must be an object, got {other:?}"),
            };
            let row = (num(w, "start_ns") / 1e6, num(w, "requests"), num(w, "shed"));
            if i == fleet.len() {
                fleet.push(row);
            } else {
                fleet[i].1 += row.1;
                fleet[i].2 += row.2;
            }
        }
    }

    println!(
        "\nFleet time series ({} windows of {CADENCE}):",
        fleet.len()
    );
    println!(
        "{:>9} {:>10} {:>7} {:>11}",
        "window", "completed", "shed", "shed rate"
    );
    let spike_from = SPIKE_AT.as_millis_f64();
    let spike_until = (SPIKE_AT + SPIKE_LEN).as_millis_f64();
    let (mut pre, mut spike) = ((0.0, 0.0), (0.0, 0.0));
    for &(start_ms, requests, shed) in &fleet {
        let rate = if requests + shed > 0.0 {
            shed / (requests + shed)
        } else {
            0.0
        };
        let phase = if start_ms < spike_from {
            pre.0 += requests;
            pre.1 += shed;
            ""
        } else if start_ms < spike_until {
            spike.0 += requests;
            spike.1 += shed;
            " <- flash crowd"
        } else {
            ""
        };
        println!("{start_ms:>7}ms {requests:>10} {shed:>7} {rate:>11.3}{phase}");
    }

    // The story: sheds concentrate in (and after) the spike. Before it
    // the guard is quiet; once the crowd lands the shed rate jumps.
    let pre_rate = pre.1 / (pre.0 + pre.1).max(1.0);
    let spike_rate = spike.1 / (spike.0 + spike.1).max(1.0);
    assert!(
        spike.1 > pre.1,
        "sheds must concentrate in the spike (pre {} vs spike {})",
        pre.1,
        spike.1
    );
    assert!(
        spike_rate > pre_rate,
        "shed rate must jump when the crowd hits ({pre_rate:.3} -> {spike_rate:.3})"
    );
    println!("\nShed rate {pre_rate:.3} pre-spike -> {spike_rate:.3} during the crowd.");

    // Ship the exports for a human (or CI) to open.
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir).expect("create target/telemetry");
    for (file, text) in [
        ("timeline.json", &base.timeline_json),
        ("timeline.csv", &base.timeline_csv),
        ("trace.json", &base.trace_json),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, text).expect("write export");
        println!("wrote {}", path.display());
    }
    println!("Open target/telemetry/trace.json at https://ui.perfetto.dev");
}
