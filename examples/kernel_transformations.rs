//! The device-code side of Tally: take a real (mini-PTX) kernel with
//! barriers and early returns, apply the paper's three transformation
//! passes, and *prove* on the interpreter that slicing and
//! preempt-then-resume executions produce bit-identical results.
//!
//! Run with: `cargo run --release --example kernel_transformations`

use tally::ptx::interp::{run_kernel, GridExec, Launch};
use tally::ptx::passes;
use tally::ptx::samples;

fn main() {
    // A block-local sum reduction: shared memory, a barrier per step, an
    // early return for out-of-range threads, and a final global atomic.
    let kernel = samples::block_reduce_sum();
    println!("=== original kernel ===\n{kernel}");

    // Reference execution: 8 blocks × 8 threads over 64 inputs.
    let grid = (8, 1, 1);
    let block = (8, 1, 1);
    let n: u64 = 60; // last block partially active
    let mut reference = device_memory();
    run_kernel(
        &kernel,
        &Launch {
            grid,
            block,
            params: vec![0, 64, n],
        },
        &mut reference,
    )
    .expect("reference run");
    println!("reference sum = {}", reference[64]);

    // --- Slicing ---------------------------------------------------------
    let sliced = passes::slicing(&kernel);
    println!("\n=== sliced kernel ===\n{}", sliced.kernel);
    let mut mem = device_memory();
    for (off, count) in passes::Sliced::plan(8, 3) {
        let launch = sliced.launch(&[0, 64, n], off, count, grid, block);
        run_kernel(&sliced.kernel, &launch, &mut mem).expect("slice");
        println!(
            "slice [{off}, {}) done, partial sum = {}",
            off + count,
            mem[64]
        );
    }
    assert_eq!(mem[64], reference[64]);
    println!("slicing preserved the result ✓");

    // --- Preemption (persistent thread blocks) ---------------------------
    let ptb = passes::ptb(&kernel);
    println!("\n=== PTB (preemptible) kernel ===\n{}", ptb.kernel);
    let mut mem = device_memory();
    const CTR: u64 = 66;
    const FLAG: u64 = 67;
    let launch = ptb.launch(&[0, 64, n], 2, grid, block, CTR, FLAG);

    // Run the two persistent workers interleaved and preempt mid-flight.
    let mut exec = GridExec::new(&ptb.kernel, launch.clone()).expect("valid");
    let mut rounds = 0;
    while !exec.all_done() {
        for b in 0..exec.num_blocks() {
            exec.step_block(b, 120, &mut mem).expect("step");
        }
        rounds += 1;
        if rounds == 4 {
            println!("setting the preemption flag…");
            mem[FLAG as usize] = 1;
        }
    }
    println!(
        "preempted after {} of 8 blocks (counter = {}), partial sum = {}",
        mem[CTR as usize].min(8),
        mem[CTR as usize],
        mem[64]
    );
    assert!(mem[CTR as usize] < 8, "preemption stopped early");

    // Resume: clear the flag, relaunch with the same counter buffer.
    mem[FLAG as usize] = 0;
    run_kernel(&ptb.kernel, &launch, &mut mem).expect("resume");
    assert_eq!(mem[64], reference[64]);
    println!("resume completed the remaining blocks; result matches ✓");
}

/// 64 inputs of value 1..=64 at words 0..64, output accumulator at 64,
/// PTB counter at 66, preemption flag at 67.
fn device_memory() -> Vec<u64> {
    let mut mem = vec![0u64; 68];
    for (i, w) in mem.iter_mut().take(64).enumerate() {
        *w = i as u64 + 1;
    }
    mem
}
