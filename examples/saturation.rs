//! Open-loop load and admission control: sweep offered QPS past the
//! saturation knee, then protect the high-priority tail from a 5x
//! best-effort flash crowd with an SLO-guarding admission policy.
//!
//! Closed-loop clients (like `quickstart`'s MAF2 trace at a fractional
//! load) self-throttle at the service rate; an open-loop `LoadProfile`
//! keeps injecting at the target rate whether or not the device keeps
//! up, so sojourn time past the knee is dominated by queueing delay.
//!
//! Run with: `cargo run --release --example saturation`

use tally::prelude::*;

fn main() {
    let spec = GpuSpec::a100();
    let duration = SimSpan::from_secs(5);
    let cfg = HarnessConfig {
        duration,
        warmup: SimSpan::from_secs(1),
        seed: 1,
        jitter: 0.0,
        record_timelines: false,
    };
    let model = InferModel::Bert;
    let cap = openloop::solo_capacity_qps(model);
    println!("{} solo capacity: {cap:.0} QPS", model.name());

    // ---- Part 1: find the knee under time-slicing ---------------------
    //
    // Co-locate the open-loop service with a trainer and sweep offered
    // load. Completed throughput tracks offered QPS until the sharing
    // system runs out of capacity to give; past that, completions
    // plateau and p99 blows up with queueing delay.
    println!("\n--- knee sweep (time-slicing + Whisper trainer) ---");
    println!("{:>10} {:>12} {:>12}", "offered", "completed", "p99");
    for frac in [0.25, 0.5, 1.5] {
        let offered = cap * frac;
        let service = openloop::service(
            &spec,
            model,
            &LoadProfile::Constant { qps: offered },
            duration,
            7,
        );
        let report = Colocation::on(spec.clone())
            .client(service)
            .client(TrainModel::WhisperV3.job(&spec))
            .system(&mut TimeSlicing::default())
            .config(cfg.clone())
            .run();
        let hp = report.high_priority().expect("service report");
        println!(
            "{:>10.0} {:>12.1} {:>12}",
            offered,
            hp.throughput,
            hp.p99().expect("latencies")
        );
    }

    // ---- Part 2: admission control under a flash crowd ----------------
    //
    // The service shares the device with a best-effort neighbor that
    // takes a 5x flash crowd. An AIMD SloGuard watches the live
    // high-priority p99 and sheds best-effort arrivals to keep it within
    // budget; RejectNever lets the crowd's backlog persist long past the
    // spike. The fair comparison is the *recovery window* after the
    // spike (the guard needs a few control windows to react), so
    // per-request timelines are recorded and the tail is re-computed
    // over the run's last second.
    let slo = SimSpan::from_millis(60);
    let mut cfg = cfg;
    cfg.record_timelines = true;
    let recovery_from = SimTime::ZERO + duration - SimSpan::from_secs(1);
    println!("\n--- 5x flash crowd, hp SLO {slo} ---");
    println!(
        "{:>14} {:>14} {:>12} {:>8} {:>10}",
        "policy", "recovery p99", "run p99", "shed", "be thr/s"
    );
    for (name, policy) in [
        (
            "reject-never",
            Box::new(RejectNever) as Box<dyn AdmissionPolicy>,
        ),
        (
            "slo-guard",
            Box::new(
                SloGuard::new(slo)
                    .window(SimSpan::from_millis(100))
                    .qps_range(2.0, 2000.0)
                    .aimd(25.0, 0.25),
            ),
        ),
    ] {
        let hp = openloop::service(
            &spec,
            model,
            &LoadProfile::Constant { qps: 0.6 * cap },
            duration,
            11,
        );
        let be = openloop::service(
            &spec,
            model,
            &LoadProfile::FlashCrowd {
                base_qps: 0.2 * cap,
                mult: 5.0,
                at: SimSpan::from_millis(1500),
                len: SimSpan::from_millis(1500),
            },
            duration,
            12,
        )
        .with_priority(Priority::BestEffort);
        let report = Colocation::on(spec.clone())
            .client(hp)
            .client(be)
            .system(&mut TimeSlicing::default())
            .config(cfg.clone())
            .admission(policy)
            .run();
        let hp = report.high_priority().expect("service report");
        let recovery = hp
            .windowed(recovery_from, SimTime::ZERO + duration)
            .p99()
            .expect("recovery latencies");
        let shed: u64 = report.clients.iter().map(|c| c.shed).sum();
        let be_thr: f64 = report
            .clients
            .iter()
            .filter(|c| !c.high_priority)
            .map(|c| c.throughput)
            .sum();
        println!(
            "{name:>14} {recovery:>14} {:>12} {shed:>8} {be_thr:>10.1}",
            hp.p99().expect("latencies")
        );
    }
    println!(
        "\nThe guard trades best-effort completions for the high-priority\n\
         tail; see `cargo bench --bench fig_saturation` for the full sweep\n\
         across every sharing system and the gated recovery-window assert."
    );
}
