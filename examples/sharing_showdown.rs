//! Head-to-head of every GPU-sharing system on one workload combination:
//! ResNet50 inference (high-priority) co-located with GPT2-Large training
//! (best-effort) — a miniature of the paper's Figure 5.
//!
//! Run with: `cargo run --release --example sharing_showdown`

use tally::prelude::*;
use tally_bench::is_tally_variant;

fn main() {
    let spec = GpuSpec::a100();
    let duration = SimSpan::from_secs(10);
    let cfg = HarnessConfig {
        duration,
        warmup: SimSpan::from_secs(1),
        seed: 3,
        jitter: 0.0,
        record_timelines: false,
    };

    let infer = InferModel::ResNet50;
    let train = TrainModel::Gpt2Large;
    let trace = arrivals(&Maf2Config::new(0.5, infer.paper_latency(), duration));

    let jobs = || [infer.job(&spec, trace.clone()), train.job(&spec)];

    // Solo references for normalized (system) throughput.
    let solo_hp = run_solo(&spec, &jobs()[0], &cfg);
    let solo_be = run_solo(&spec, &jobs()[1], &cfg);
    let solo = [solo_hp.throughput, solo_be.throughput];
    let ideal_p99 = solo_hp.p99().expect("solo latencies");

    println!(
        "{} (hp, 50% load) + {} (best-effort), {duration} simulated\n",
        infer.name(),
        train.name()
    );
    println!(
        "{:<20} {:>12} {:>12} {:>10}",
        "system", "p99", "vs ideal", "sys-thr"
    );
    println!(
        "{:<20} {:>12} {:>12} {:>10.2}",
        "ideal",
        format!("{ideal_p99}"),
        "-",
        1.0
    );

    let mut systems: Vec<Box<dyn SharingSystem>> = tally::baselines::all_baselines();
    systems.push(Box::new(TallySystem::new(TallyConfig::paper_default())));
    for system in &mut systems {
        // Only Tally (and its ablations) deploy behind the interception
        // layer; the shared predicate keeps this in sync with the benches.
        let virtualized = is_tally_variant(system.name());
        let mut session = Colocation::on(spec.clone())
            .clients(jobs())
            .system(system.as_mut())
            .config(cfg.clone());
        if virtualized {
            session = session.transport(Transport::SharedMemory);
        }
        let report = session.run();
        let p99 = report
            .high_priority()
            .and_then(|c| c.p99())
            .expect("latencies");
        let overhead = (p99.ratio(ideal_p99) - 1.0) * 100.0;
        let st = report.system_throughput(&solo);
        println!(
            "{:<20} {:>12} {:>11.1}% {:>10.2}",
            report.system,
            format!("{p99}"),
            overhead,
            st
        );
    }
}
