//! Packing many low-utilization tenants onto one GPU (the paper's §5.4
//! scalability scenario): one high-priority ResNet50 inference service at
//! 10% load plus N best-effort offline ResNet50 inference jobs — Tally
//! should keep the online service's p99 flat while aggregate throughput
//! climbs until the GPU saturates.
//!
//! Run with: `cargo run --release --example multi_tenant`

use tally::prelude::*;

fn main() {
    let spec = GpuSpec::a100();
    let duration = SimSpan::from_secs(10);
    let cfg = HarnessConfig {
        duration,
        warmup: SimSpan::from_secs(1),
        seed: 11,
        jitter: 0.0,
        record_timelines: false,
    };
    let model = InferModel::ResNet50;

    println!(
        "online {} at 10% load + N offline copies (best-effort)\n",
        model.name()
    );
    println!("{:>3} {:>12} {:>16}", "N", "online p99", "req/min (total)");

    for n in [0usize, 1, 2, 4, 6, 8, 10] {
        let mut jobs = Vec::new();
        // The online, latency-critical tenant.
        let trace =
            arrivals(&Maf2Config::new(0.10, model.paper_latency(), duration).with_seed(100));
        jobs.push(model.job(&spec, trace));
        // Offline tenants: same model, saturating arrival queues, run as
        // best-effort (the paper designates them offline inference).
        for i in 0..n {
            let trace = arrivals(
                &Maf2Config::new(0.10, model.paper_latency(), duration).with_seed(200 + i as u64),
            );
            jobs.push(model.job(&spec, trace).with_priority(Priority::BestEffort));
        }

        let mut tally = TallySystem::new(TallyConfig::paper_default());
        let report = Colocation::on(spec.clone())
            .clients(jobs)
            .system(&mut tally)
            .config(cfg.clone())
            .transport(Transport::SharedMemory)
            .run();
        let online_p99 = report
            .high_priority()
            .and_then(|c| c.p99())
            .expect("latencies");
        let total_rpm: f64 = report.clients.iter().map(|c| c.throughput * 60.0).sum();
        println!(
            "{:>3} {:>12} {:>16.0}",
            n,
            format!("{online_p99}"),
            total_rpm
        );
    }

    println!("\nThe online p99 should stay ~flat as tenants pack in.");
}
