//! # tally — non-intrusive performance isolation for concurrent DL workloads
//!
//! A full-system reproduction of *"Tally: Non-Intrusive Performance
//! Isolation for Concurrent Deep Learning Workloads"* (Zhao, Jayarajan,
//! Pekhimenko — ASPLOS 2025), built on a from-scratch discrete-event GPU
//! simulator and a mini-PTX compiler stack.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`gpu`] ([`tally_gpu`]) — the A100-class discrete-event GPU engine;
//! * [`ptx`] ([`tally_ptx`]) — the mini-PTX IR, Tally's three kernel
//!   transformation passes, and the verifying interpreter;
//! * [`core`] ([`tally_core`]) — Tally itself: virtualization layer,
//!   transparent profiler, priority-aware scheduler, co-location harness;
//! * [`workloads`] ([`tally_workloads`]) — the paper's Table 2 benchmark
//!   suite and MAF2-style traffic;
//! * [`baselines`] ([`tally_baselines`]) — Time-Slicing, MPS,
//!   MPS-Priority, TGS, and the Figure 7b ablations.
//!
//! ```
//! use tally::prelude::*;
//!
//! let spec = GpuSpec::a100();
//! let trainer = TrainModel::PointNet.job(&spec);
//! let arrivals = tally::workloads::maf2::poisson_arrivals(
//!     0.3,
//!     InferModel::ResNet50.paper_latency(),
//!     SimSpan::from_secs(2),
//!     7,
//! );
//! let service = InferModel::ResNet50.job(&spec, arrivals);
//! let mut tally = TallySystem::new(TallyConfig::paper_default());
//! let report = Colocation::on(spec)
//!     .client(service)
//!     .client(trainer)
//!     .system(&mut tally)
//!     .config(HarnessConfig {
//!         duration: SimSpan::from_secs(2),
//!         warmup: SimSpan::from_millis(200),
//!         ..Default::default()
//!     })
//!     .transport(Transport::SharedMemory)
//!     .run();
//! assert!(report.high_priority().unwrap().requests > 0);
//! ```

#![warn(missing_docs)]

pub use tally_baselines as baselines;
pub use tally_core as core;
pub use tally_gpu as gpu;
pub use tally_ptx as ptx;
pub use tally_workloads as workloads;

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use tally_baselines::{KernelLevelPriority, Mps, Tgs, TimeSlicing};
    pub use tally_core::admission::{
        AdmissionPolicy, AdmissionVerdict, QueueCap, RejectNever, SloGuard,
    };
    pub use tally_core::api::{ApiCall, ClientStub, InterceptStats, Transport};
    pub use tally_core::cluster::{
        BestEffortPacking, Cluster, ClusterClientReport, ClusterReport, DeviceLoad, DeviceReport,
        LeastLoaded, LoadAware, PlacementPolicy, RoundRobin,
    };
    pub use tally_core::events::{
        LoadMonitor, Observation, SessionObserver, SharedObserver, SharedSyncObserver, TraceError,
        FLEET_DEVICE,
    };
    pub use tally_core::harness::{
        run_solo, ActivityWindow, Colocation, HarnessConfig, InterceptMode, JobKind, JobSpec,
        Session, SessionEvent, WorkloadOp,
    };
    pub use tally_core::metrics::{ClientReport, LatencyRecorder, RunReport, Windowed};
    pub use tally_core::scheduler::{TallyConfig, TallySystem};
    pub use tally_core::system::{Passthrough, SharingSystem};
    pub use tally_core::topology::{Link, LinkKind, Topology};

    pub use tally_core::telemetry::{
        ChromeTraceWriter, ClientMetrics, DeviceMetrics, Histogram, MetricSample, MetricsHub,
        Timeline, TimelineWindow,
    };
    pub use tally_gpu::{
        ClientId, Dim3, Engine, GpuSpec, KernelDesc, KernelOrigin, LaunchRequest, LaunchShape,
        Priority, SimSpan, SimTime, Step,
    };
    pub use tally_workloads::maf2::{arrivals, Maf2Config};
    pub use tally_workloads::openloop::{self, LoadProfile};
    pub use tally_workloads::trace::{
        ArrivalTrace, ClientEvent, TraceGen, TraceJob, TraceMix, TraceRecorder,
    };
    pub use tally_workloads::{InferModel, TrainModel};
}
